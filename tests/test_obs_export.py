"""Exporters and post-hoc analysis: Chrome trace, metrics JSON, gaps."""

from __future__ import annotations

import json
from collections import defaultdict

from repro.obs import (
    METRICS_SCHEMA,
    Recorder,
    ascii_timeline,
    chrome_trace,
    critical_idle,
    load_chrome_trace,
    metrics_dict,
    self_times,
    summarize,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.record import SpanRecord
from repro.obs.scenarios import run_target


def _recorded_run():
    return run_target("steals", record=True)


class TestChromeTrace:
    def test_document_is_valid_and_loadable(self):
        run = _recorded_run()
        doc = json.loads(json.dumps(chrome_trace(run.recorder, tracer=run.tracer)))
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        for ev in events:
            # X/i/M plus the s/f flow-event pairs drawn for causal edges
            assert ev["ph"] in ("X", "i", "M", "s", "f")
            assert ev["pid"] == 0
            assert isinstance(ev["tid"], int)
            if ev["ph"] != "M":
                assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
        assert doc["otherData"]["spans_dropped"] == 0

    def test_span_timestamps_monotone_per_rank_track(self):
        run = _recorded_run()
        doc = chrome_trace(run.recorder)
        per_tid = defaultdict(list)
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                per_tid[ev["tid"]].append(ev["ts"])
        assert len(per_tid) > 1
        for tid, ts in per_tid.items():
            assert ts == sorted(ts), f"track {tid} out of order"

    def test_metadata_names_every_rank_track(self):
        run = _recorded_run()
        doc = chrome_trace(run.recorder)
        named = {
            ev["tid"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert named == set(range(run.engine.nprocs))

    def test_roundtrip_through_file(self, tmp_path):
        run = _recorded_run()
        path = write_chrome_trace(run.recorder, tmp_path / "t.json", tracer=run.tracer)
        spans = load_chrome_trace(path)
        assert len(spans) == len(run.recorder.finished_spans())
        cats = {s.category for s in spans}
        assert "steal" in cats


class TestMetricsJson:
    def test_schema_and_required_histograms(self, tmp_path):
        run = _recorded_run()
        path = write_metrics_json(run.recorder, tmp_path / "m.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["nprocs"] == run.engine.nprocs
        hs = doc["histograms"]
        assert hs["steal_latency"]["count"] > 0
        assert hs["wave_rtt"]["count"] > 0
        assert len(hs["steal_latency"]["counts"]) == len(hs["steal_latency"]["edges"]) + 1
        assert doc["spans"]["recorded"] == len(run.recorder.spans)

    def test_process_stats_embedded_when_given(self):
        run = run_target("uts-tiny")
        stats = [s.to_dict() for s in run.process_stats]
        doc = metrics_dict(run.recorder, process_stats=stats)
        assert doc["process_stats"] == stats
        assert all("efficiency" in d for d in doc["process_stats"])


def _span(rank, name, cat, start, end):
    return SpanRecord(rank=rank, name=name, category=cat, start=start, end=end)


class TestAnalysis:
    def test_ascii_timeline_rows_and_legend(self):
        run = _recorded_run()
        art = ascii_timeline(run.recorder.finished_spans(), run.engine.nprocs, width=40)
        lines = art.splitlines()
        assert sum(1 for ln in lines if ln.startswith("rank")) == run.engine.nprocs
        assert "legend:" in lines[-1]

    def test_critical_idle_finds_the_gap_and_its_bounds(self):
        spans = [
            _span(0, "work", "task", 0.0, 1.0),
            _span(0, "late", "task", 3.0, 4.0),
            _span(1, "busy", "task", 0.0, 4.0),
        ]
        (gap,) = critical_idle(spans, top=5)
        assert gap.rank == 0
        assert gap.start == 1.0 and gap.end == 3.0
        assert gap.before == "work" and gap.after == "late"
        assert "idle" in gap.describe()

    def test_overlapping_cover_hides_non_gaps(self):
        spans = [
            _span(0, "a", "task", 0.0, 2.0),
            _span(0, "b", "comm", 1.0, 3.0),  # overlaps a: no gap at [1,2]
            _span(0, "c", "task", 3.0, 4.0),  # touches b: still no gap
        ]
        assert critical_idle(spans) == []

    def test_self_times_subtract_nested_children(self):
        spans = [
            _span(0, "parent", "task", 0.0, 10.0),
            _span(0, "child", "comm", 2.0, 6.0),
            _span(0, "grandchild", "lock", 3.0, 4.0),
        ]
        st = self_times(spans)[0]
        assert st["task"] == 6.0  # 10 - child's 4
        assert st["comm"] == 3.0  # 4 - grandchild's 1
        assert st["lock"] == 1.0

    def test_self_times_handle_out_of_stack_spans(self):
        # a complete_span-style interval covering everything on the rank
        spans = [
            _span(0, "tc_process", "runtime", 0.0, 10.0),
            _span(0, "t1", "task", 0.0, 4.0),
            _span(0, "t2", "task", 5.0, 9.0),
        ]
        st = self_times(spans)[0]
        assert st["runtime"] == 2.0
        assert st["task"] == 8.0

    def test_summarize_report_sections(self):
        run = _recorded_run()
        text = summarize(run.recorder.finished_spans(), width=40, top=3)
        assert "timeline:" in text
        assert "longest 3 spans:" in text
        assert "aggregate self time by category:" in text


class TestCli:
    def test_run_writes_both_exports(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main(
            ["run", "uts-tiny", "--trace", str(trace), "--metrics", str(metrics),
             "--timeline", "--width", "40"]
        )
        assert rc == 0
        assert json.loads(trace.read_text())["traceEvents"]
        assert json.loads(metrics.read_text())["schema"] == METRICS_SCHEMA
        out = capsys.readouterr().out
        assert "chrome trace ->" in out and "legend:" in out
        assert "per-rank" in out

    def test_summarize_and_critical_idle_commands(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "t.json"
        assert main(["run", "steals", "--trace", str(trace)]) == 0
        assert main(["summarize", str(trace), "--width", "40"]) == 0
        assert main(["critical-idle", str(trace)]) == 0
        assert "timeline:" in capsys.readouterr().out
