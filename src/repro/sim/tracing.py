"""Deprecated re-export shim for :mod:`repro.obs.tracing`.

The structured event tracer moved into the unified observability
package (``repro.obs``) alongside the span recorder and the metrics
registry; import :class:`~repro.obs.tracing.Tracer`,
:class:`~repro.obs.tracing.TraceEvent`, and
:func:`~repro.obs.tracing.trace` from there.  This shim keeps old
imports working for one release and warns (mirroring the
``repro.sim.trace`` -> ``repro.sim.counters`` rename shim).
"""

from __future__ import annotations

import warnings

from repro.obs.tracing import TraceEvent, Tracer, trace

__all__ = ["Tracer", "TraceEvent", "trace"]

warnings.warn(
    "repro.sim.tracing has moved to repro.obs.tracing; "
    "update imports to 'from repro.obs.tracing import Tracer, trace'",
    DeprecationWarning,
    stacklevel=2,
)
