"""Two-sided MPI work stealing with explicit polling (UTS-MPI baseline).

Reimplements the load balancer of the paper's comparison point (Dinan
et al., IPDPS 2007): each rank keeps a local work deque, processes items
LIFO, and every ``poll_interval`` items polls for steal *requests* from
idle peers, answering with a chunk of its oldest items (the biggest
subtrees) or a decline.  Idle ranks send requests to random victims and
wait — serving other requests and forwarding termination tokens while
they do, since nothing one-sided exists to make progress for them.

Termination uses the Dijkstra-Feijen-van Gasteren colored token ring:
rank 0 circulates a white token when idle; any rank that sent work since
its last token pass colors the token black; rank 0 declares termination
when a token returns white while itself idle and white.

The cost difference to Scioto is structural, exactly as §6.3 argues:
every steal needs the victim's attention (polling cost on the critical
path of *working* processes, waiting time on the thief), whereas
Scioto's thieves operate on the victim's queue one-sidedly.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.mpi import ANY_SOURCE, Mpi
from repro.sim.engine import Proc

__all__ = ["MpiWorkStealing", "WHITE", "BLACK"]

TAG_REQ = 101
TAG_RESP = 102
TAG_CTRL = 103  # termination tokens and the final done broadcast

WHITE = 0
BLACK = 1

#: Idle backoff between failed steal rounds.
_IDLE_BACKOFF = 0.5e-6


class MpiWorkStealing:
    """A message-passing work-stealing executor for one rank.

    Args:
        proc: This rank's simulated process.
        process_item: ``process_item(proc, item, push)`` — execute one
            work item; call ``push(new_item)`` for each item it spawns.
        item_bytes: Wire size of one work item.
        chunk: Maximum items handed over per steal.
        poll_interval: Items processed between polls for steal requests.
    """

    def __init__(
        self,
        proc: Proc,
        process_item: Callable[[Proc, Any, Callable[[Any], None]], None],
        item_bytes: int = 32,
        chunk: int = 10,
        poll_interval: int = 4,
    ) -> None:
        self.proc = proc
        self.mpi = Mpi.attach(proc.engine)
        self.process_item = process_item
        self.item_bytes = item_bytes
        self.chunk = chunk
        self.poll_interval = poll_interval
        self.deque: list[Any] = []
        self.color = WHITE
        self.token_in_hand: int | None = None
        self.probe_outstanding = False
        self.done = False
        self.processed = 0
        self.steals = 0
        self.steal_attempts = 0
        self._failed_rounds = 0  # consecutive declined steals, for backoff

    # ------------------------------------------------------------------ #
    # Local deque with machine-model costs (no sync needed: rank-private)
    # ------------------------------------------------------------------ #
    def push(self, item: Any) -> None:
        m = self.proc.machine
        self.proc.advance(m.local_insert_overhead + m.local_copy_time(self.item_bytes))
        self.deque.append(item)

    def _pop(self) -> Any:
        m = self.proc.machine
        self.proc.advance(m.local_get_overhead + m.local_copy_time(self.item_bytes))
        return self.deque.pop()

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, initial: list[Any]) -> int:
        """Process ``initial`` and everything spawned from it; collective.

        Returns the number of items this rank processed.
        """
        proc = self.proc
        self.mpi.barrier(proc)
        for item in initial:
            self.push(item)
        if proc.nprocs == 1:
            while self.deque:
                self.process_item(proc, self._pop(), self.push)
                self.processed += 1
            return self.processed
        while not self.done:
            while self.deque and not self.done:
                for _ in range(min(self.poll_interval, len(self.deque))):
                    item = self._pop()
                    self.process_item(proc, item, self.push)
                    self.processed += 1
                self._service(proc)
            if self.done:
                break
            self._idle_round(proc)
        return self.processed

    # ------------------------------------------------------------------ #
    # Serving steal requests and control messages
    # ------------------------------------------------------------------ #
    def _service(self, proc: Proc) -> None:
        """Poll for and serve steal requests; drain control messages."""
        while self.mpi.iprobe(proc, tag=TAG_REQ):
            src, _, _ = self.mpi.recv(proc, tag=TAG_REQ)
            if len(self.deque) > 1:
                k = min(self.chunk, len(self.deque) // 2)
                give = self.deque[:k]  # oldest items: the biggest subtrees
                del self.deque[:k]
                self.mpi.send(
                    proc, src, TAG_RESP, give, nbytes=16 + k * self.item_bytes
                )
                self.color = BLACK  # transferred work since last token pass
            else:
                self.mpi.send(proc, src, TAG_RESP, [], nbytes=16)
        self._drain_control(proc)

    def _drain_control(self, proc: Proc) -> None:
        while self.mpi.iprobe(proc, tag=TAG_CTRL):
            _, _, msg = self.mpi.recv(proc, tag=TAG_CTRL)
            if msg[0] == "token":
                self.token_in_hand = msg[1]
            else:  # done
                self.done = True

    def _token_step(self, proc: Proc) -> None:
        """Forward / evaluate the termination token while idle."""
        if self.done or self.deque:
            return
        rank, n = proc.rank, proc.nprocs
        if rank == 0:
            if self.token_in_hand is not None:
                token = self.token_in_hand
                self.token_in_hand = None
                self.probe_outstanding = False
                if token == WHITE and self.color == WHITE:
                    self.done = True
                    for r in range(1, n):
                        self.mpi.send(proc, r, TAG_CTRL, ("done",))
                    return
                self.color = WHITE  # accounted; restart probe below
            if not self.probe_outstanding:
                self.probe_outstanding = True
                self.color = WHITE
                self.mpi.send(proc, 1, TAG_CTRL, ("token", WHITE))
        elif self.token_in_hand is not None:
            token = self.token_in_hand
            self.token_in_hand = None
            if self.color == BLACK:
                token = BLACK
            self.color = WHITE
            self.mpi.send(proc, (rank + 1) % n, TAG_CTRL, ("token", token))

    # ------------------------------------------------------------------ #
    # Stealing
    # ------------------------------------------------------------------ #
    def _idle_round(self, proc: Proc) -> None:
        """One idle iteration: try a random victim, keep the system live.

        Consecutive declines trigger exponential backoff (capped), the
        standard defence against steal-request storms: hundreds of idle
        ranks hammering the few loaded ones would otherwise spend the
        victims' cycles answering declines.
        """
        self._token_step(proc)
        if self.done:
            return
        victim = int(proc.rng.integers(0, proc.nprocs - 1))
        if victim >= proc.rank:
            victim += 1
        self.steal_attempts += 1
        self.mpi.send(proc, victim, TAG_REQ, None)
        while not self.done:
            if self.mpi.iprobe(proc, source=victim, tag=TAG_RESP):
                _, _, items = self.mpi.recv(proc, source=victim, tag=TAG_RESP)
                if items:
                    m = proc.machine
                    proc.advance(
                        m.local_insert_overhead
                        + m.local_copy_time(len(items) * self.item_bytes)
                    )
                    self.deque[:0] = items
                    self.steals += 1
                    self._failed_rounds = 0
                else:
                    self._failed_rounds += 1
                    backoff = min(
                        _IDLE_BACKOFF * (1 << min(self._failed_rounds, 16)),
                        50e-6,
                    )
                    self._wait_idle(proc, backoff)
                return
            # while waiting: decline other thieves, move tokens along
            self._service(proc)
            self._token_step(proc)
            proc.sleep(_IDLE_BACKOFF)

    def _wait_idle(self, proc: Proc, duration: float) -> None:
        """Back off while staying responsive to requests and tokens."""
        deadline = proc.now + duration
        while proc.now < deadline and not self.done:
            self._service(proc)
            self._token_step(proc)
            if self.deque:
                return
            proc.sleep(min(4.0e-6, max(deadline - proc.now, 1e-9)))
