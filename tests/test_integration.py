"""Cross-module integration tests: TC + GA + CLOs + termination under stress."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AFFINITY_HIGH, SciotoConfig, Task, TaskCollection
from repro.ga import GlobalArray, GlobalCounter
from repro.sim.engine import Engine
from repro.sim.machines import heterogeneous_cluster


def _run(nprocs, main, *args, seed=0, machine=None, max_events=3_000_000):
    eng = Engine(nprocs, seed=seed, machine=machine, max_events=max_events)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestActivityPingPong:
    """Termination must never fire early even when ranks oscillate between
    active and passive via remote task injection — the adversarial case
    for wave-based detection."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000), opt=st.booleans(), rounds=st.integers(1, 12))
    def test_remote_injection_chains(self, seed, opt, rounds):
        executed = []
        cfg = SciotoConfig(termination_opt=opt)

        def main(proc):
            tc = TaskCollection.create(proc, config=cfg)

            def hop(tc_, task):
                step = task.body
                tc_.proc.compute(2e-6)
                executed.append(step)
                if step < rounds:
                    # bounce to a pseudo-random other rank: the target may
                    # have voted already; dirty piggybacking must catch it
                    dest = (tc_.rank + 1 + step) % tc_.nprocs
                    tc_.proc.sleep(25e-6)  # let everyone go idle first
                    tc_.add(Task(callback=h, body=step + 1), rank=dest)

            h = tc.register(hop)
            if proc.rank == 0:
                tc.add(Task(callback=h, body=0))
            tc.process()

        _run(5, main, seed=seed)
        assert sorted(executed) == list(range(rounds + 1)), (
            "a hop was lost or termination fired early"
        )

    def test_fan_out_fan_in_waves(self):
        """Repeated storms of remote adds from a single coordinator."""
        executed = []

        def main(proc):
            tc = TaskCollection.create(proc)

            def worker(tc_, task):
                tc_.proc.compute(3e-6)
                executed.append(task.body)

            def coordinator(tc_, task):
                wave = task.body
                tc_.proc.compute(1e-6)
                for r in range(tc_.nprocs):
                    tc_.add(Task(callback=hw, body=(wave, r)), rank=r)
                if wave < 3:
                    tc_.proc.sleep(100e-6)  # everyone likely idle again
                    tc_.add(Task(callback=hc, body=wave + 1))

            hw = tc.register(worker)
            hc = tc.register(coordinator)
            if proc.rank == 0:
                tc.add(Task(callback=hc, body=0))
            tc.process()

        _run(4, main, seed=7)
        assert sorted(executed) == sorted((w, r) for w in range(4) for r in range(4))


class TestFullStack:
    def test_ga_clo_affinity_pipeline(self):
        """A miniature SCF-shaped app touching every subsystem: tasks read
        GA input, accumulate into GA output, tally into CLOs, and are
        seeded at owners with high affinity on a heterogeneous machine."""
        n = 24
        nblocks = 6
        bs = n // nblocks

        def main(proc):
            src = GlobalArray.create(proc, "src", (n, n))
            dst = GlobalArray.create(proc, "dst", (n, n))
            lo, hi = src.distribution(proc.rank)
            sl = tuple(slice(a, b) for a, b in zip(lo, hi))
            full = np.arange(n * n, dtype=float).reshape(n, n)
            src.access(proc)[...] = full[sl]
            src.sync(proc)

            tc = TaskCollection.create(proc, task_size=64)
            tally = tc.register_clo({"blocks": 0})

            def block_task(tc_, task):
                i, j = task.body
                p = tc_.proc
                box_lo, box_hi = (i * bs, j * bs), ((i + 1) * bs, (j + 1) * bs)
                blk = src.get(p, box_lo, box_hi)
                p.compute(bs * bs * 10 * p.machine.seconds_per_flop)
                dst.acc(p, box_lo, box_hi, 2.0 * blk)
                tc_.clo(tally)["blocks"] += 1

            h = tc.register(block_task)
            for i in range(nblocks):
                for j in range(nblocks):
                    if dst.locate((i * bs, j * bs)) == proc.rank:
                        tc.add(Task(callback=h, body=(i, j)), affinity=AFFINITY_HIGH)
            tc.process()
            dst.sync(proc)
            return (tc.clo(tally)["blocks"], dst.read_full(proc))

        eng, res = _run(4, main, machine=heterogeneous_cluster(4))
        total_blocks = sum(r[0] for r in res.returns)
        assert total_blocks == nblocks * nblocks
        expect = 2.0 * np.arange(24 * 24, dtype=float).reshape(24, 24)
        assert np.allclose(res.returns[0][1], expect)

    def test_counter_and_collection_coexist(self):
        """A GA counter and a task collection in the same program (phase
        pattern some GA applications use)."""

        def main(proc):
            counter = GlobalCounter.create(proc)
            tc = TaskCollection.create(proc)
            claims = []

            def claimer(tc_, task):
                claims.append(counter.read_inc(tc_.proc))

            h = tc.register(claimer)
            if proc.rank == 0:
                for _ in range(12):
                    tc.add(Task(callback=h))
            tc.process()
            return claims

        _, res = _run(3, main)
        all_claims = sorted(v for r in res.returns for v in r)
        assert all_claims == list(range(12))

    def test_two_phase_scf_like_reuse(self):
        """tc_reset + reseed across phases keeps results deterministic."""
        phase_sums = []

        def main(proc):
            acc = GlobalArray.create(proc, "acc", (8,))
            tc = TaskCollection.create(proc)

            def add_one(tc_, task):
                acc.acc(tc_.proc, (task.body,), (task.body + 1,), np.ones(1))

            h = tc.register(add_one)
            for phase in range(3):
                if proc.rank == 0:
                    for i in range(8):
                        tc.add(Task(callback=h, body=i), rank=i % proc.nprocs)
                tc.process()
                acc.sync(proc)
                if proc.rank == 0:
                    phase_sums.append(acc.read_full(proc).sum())
                tc.reset()

        _run(2, main)
        assert phase_sums == [8.0, 16.0, 24.0]
