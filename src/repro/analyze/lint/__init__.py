"""Static AST lint for Scioto-style PGAS runtime code.

The rules encode the framework's discipline — the properties the
dynamic race detector checks at runtime, enforced at the source level
where that is possible:

========  ==========================================================
RPR001    shared-queue field mutated outside a lock scope
RPR002    wall-clock time or unseeded randomness in ``src/repro``
RPR003    poll loop that never yields to the simulation engine
RPR004    task body capturing process-local state instead of a CLO
RPR005    flag-carrying put not preceded by a fence
RPR006    inconsistent lock-acquisition order across the module
========  ==========================================================

Suppression:

* ``# repro: lint-disable=RPR002`` on a line suppresses the named
  rule(s) for that line (comma-separate several ids).
* ``# repro: lint-disable-file=RPR001`` anywhere in a file suppresses
  the rule(s) for the whole file.

Rules are heuristic: they reason about names and call shapes, not
types.  A false positive at a sanctioned site gets a suppression
comment, which doubles as documentation that the site was reviewed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

__all__ = [
    "Finding",
    "LintRule",
    "RULES",
    "register_rule",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

_DISABLE_LINE = re.compile(r"#\s*repro:\s*lint-disable=([A-Z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*repro:\s*lint-disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class LintRule:
    """A registered rule: an id, a one-line title, and a checker.

    The checker receives the parsed module and returns ``(line,
    message)`` pairs; the framework attaches the id/path and applies
    suppressions.
    """

    id: str
    title: str
    check: Callable[[ast.Module, str], list[tuple[int, str]]]


#: Rule registry, keyed by rule id (populated by :mod:`.rules`).
RULES: dict[str, LintRule] = {}


def register_rule(rule_id: str, title: str):
    """Decorator registering ``fn(tree, source) -> [(line, msg)]``."""

    def deco(fn: Callable[[ast.Module, str], list[tuple[int, str]]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule {rule_id}")
        RULES[rule_id] = LintRule(id=rule_id, title=title, check=fn)
        return fn

    return deco


@dataclass
class _Suppressions:
    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    def allows(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_rules:
            return False
        return rule_id not in self.line_rules.get(line, ())

    @classmethod
    def parse(cls, source: str) -> "_Suppressions":
        sup = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _DISABLE_FILE.search(text)
            if m:
                sup.file_rules.update(_ids(m.group(1)))
                continue
            m = _DISABLE_LINE.search(text)
            if m:
                sup.line_rules.setdefault(lineno, set()).update(_ids(m.group(1)))
        return sup


def _ids(spec: str) -> list[str]:
    return [part.strip() for part in spec.split(",") if part.strip()]


def lint_file(
    path: str | Path,
    source: str | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one file; returns findings surviving suppression comments."""
    path = Path(path)
    if source is None:
        source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding("RPR000", str(path), exc.lineno or 0, f"syntax error: {exc.msg}")]
    sup = _Suppressions.parse(source)
    selected = RULES if rules is None else {r: RULES[r] for r in rules}
    findings: list[Finding] = []
    for rule in selected.values():
        for line, message in rule.check(tree, source):
            if sup.allows(rule.id, line):
                findings.append(Finding(rule.id, str(path), line, message))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``; returns (findings, nfiles)."""
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, rules=rules))
    return findings, len(files)


# Importing the rules module populates RULES.
from repro.analyze.lint import rules as _rules  # noqa: E402,F401
