"""Backend equivalence and teardown robustness for the switch backends.

The engine's contract is that the context-switch mechanism is
unobservable: every backend must produce bit-for-bit identical results
— same event counts, same finish times, same counters, same recorded
span streams, same exploration traces.  These tests enforce that
contract across every backend available in the environment (greenlet
cases skip when the optional package is absent; CI installs it).
"""

from __future__ import annotations

import pytest

from repro.check.runner import run_once
from repro.check.scenarios import SCENARIOS, make_scenario
from repro.check.strategies import (
    DelayInjector,
    PctStrategy,
    RandomWalk,
    ReplayStrategy,
)
from repro.obs.scenarios import fingerprint, run_target
from repro.sim.backends import (
    BACKENDS,
    available_backends,
    greenlet_available,
    make_backend,
    resolve_backend_name,
)
from repro.sim.engine import Engine, run_spmd
from repro.util.errors import SimDeadlockError, SimShutdown

ALL_BACKENDS = available_backends()
ALT_BACKENDS = [b for b in ALL_BACKENDS if b != "thread"]

needs_greenlet = pytest.mark.skipif(
    not greenlet_available(), reason="optional 'greenlet' package not installed"
)


def _span_stream(recorder):
    return [
        (s.rank, s.name, s.category, s.start, s.end, s.depth, s.parent)
        for s in recorder.spans
    ]


# --------------------------------------------------------------------- #
# Resolution and selection
# --------------------------------------------------------------------- #
def test_available_backends_always_include_thread():
    names = available_backends()
    assert "coro" in names
    assert "thread" in names
    assert "thread-sem" in names
    assert names[0] == "coro"  # fastest first
    assert set(names) <= set(BACKENDS)


def test_resolve_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown simulation backend"):
        resolve_backend_name("fibers")


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BACKEND", "thread-sem")
    assert resolve_backend_name("auto") == "thread-sem"
    # An explicit argument beats the environment.
    assert resolve_backend_name("thread") == "thread"


def test_resolve_auto_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    # The trampoline needs nothing beyond the stdlib, so auto always
    # resolves to it.
    assert resolve_backend_name("auto") == "coro"


def test_explicit_greenlet_without_package_raises(monkeypatch):
    if greenlet_available():
        pytest.skip("greenlet installed; the failure path is unreachable")
    with pytest.raises(RuntimeError, match="greenlet"):
        resolve_backend_name("greenlet")
    monkeypatch.setenv("REPRO_SIM_BACKEND", "greenlet")
    with pytest.raises(RuntimeError, match="greenlet"):
        resolve_backend_name("auto")


def test_engine_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown simulation backend"):
        Engine(2, backend="fibers")


# --------------------------------------------------------------------- #
# Bit-for-bit equivalence across backends
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_check_scenarios_fingerprint_equivalence(scenario, backend, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BACKEND", "thread")
    base = fingerprint(run_target(scenario, seed=0, record=True))
    base_spans = _span_stream(run_target(scenario, seed=0, record=True).recorder)
    monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
    other_run = run_target(scenario, seed=0, record=True)
    assert fingerprint(other_run) == base
    assert _span_stream(other_run.recorder) == base_spans


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_uts_fingerprint_equivalence(backend, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BACKEND", "thread")
    base_run = run_target("uts-tiny", nprocs=4, seed=0, record=True)
    base = fingerprint(base_run)
    base_spans = _span_stream(base_run.recorder)
    monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
    other = run_target("uts-tiny", nprocs=4, seed=0, record=True)
    assert fingerprint(other) == base
    assert other.extra == base_run.extra  # node counts, throughput inputs
    assert _span_stream(other.recorder) == base_spans


@needs_greenlet
def test_uts_small_thread_vs_greenlet(monkeypatch):
    """The acceptance pairing: the big preset, thread vs greenlet."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", "thread")
    base = fingerprint(run_target("uts-small", nprocs=4, seed=0, record=False))
    monkeypatch.setenv("REPRO_SIM_BACKEND", "greenlet")
    other = fingerprint(run_target("uts-small", nprocs=4, seed=0, record=False))
    assert other == base


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_check_exploration_traces_equivalent(scenario, backend, monkeypatch):
    """Exploring strategies must record identical decision traces on
    every backend, and replaying a trace recorded on one backend must
    reproduce the run on another."""
    sc = make_scenario(scenario)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "thread")
    walk = RandomWalk(seed=7)
    base = run_once(sc, walk, engine_seed=0)
    monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
    walk2 = RandomWalk(seed=7)
    other = run_once(make_scenario(scenario), walk2, engine_seed=0)
    assert other.events == base.events
    assert walk2.decisions == walk.decisions
    # Cross-backend replay: the recorded trace steers the other backend
    # through the identical schedule.
    replay = ReplayStrategy(list(walk.decisions))
    replayed = run_once(make_scenario(scenario), replay, engine_seed=0)
    assert replayed.events == base.events


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_finish_times_and_returns_equivalent(backend):
    def main(proc):
        for _ in range(10):
            proc.compute(1e-6 * (proc.rank + 1))
            proc.sync()
        return proc.now

    base = run_spmd(4, main, backend="thread")
    other = run_spmd(4, main, backend=backend)
    assert other.finish_times == base.finish_times
    assert other.returns == base.returns
    assert other.events == base.events
    assert other.elapsed == base.elapsed


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_deadlock_identical_across_backends(backend):
    def main(proc):
        if proc.rank:
            proc.park(where=f"stuck-{proc.rank}")

    def run(b):
        with pytest.raises(SimDeadlockError) as ei:
            run_spmd(3, main, backend=b)
        return str(ei.value), ei.value.parked

    assert run("thread") == run(backend)


# --------------------------------------------------------------------- #
# Teardown robustness (satellite: never-started contexts must not hang)
# --------------------------------------------------------------------- #
def test_teardown_survives_thread_start_failure(monkeypatch):
    """If a proc's execution context never starts, teardown must not
    handshake against it forever."""
    import threading

    real_start = threading.Thread.start
    started = []

    def failing_start(self):
        if self.name.startswith("simproc-") and len(started) >= 2:
            raise RuntimeError("out of threads")
        started.append(self.name)
        real_start(self)

    monkeypatch.setattr(threading.Thread, "start", failing_start)
    eng = Engine(4, backend="thread")
    eng.spawn_all(lambda proc: proc.sync())
    with pytest.raises(RuntimeError, match="out of threads"):
        eng.run()  # must raise promptly, not hang in teardown


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_teardown_after_proc_failure(backend):
    """A raising proc unwinds the other (parked and running) contexts."""

    def main(proc):
        if proc.rank == 0:
            proc.compute(1e-6)
            proc.sync()
            raise ValueError("boom")
        if proc.rank == 1:
            proc.park(where="forever")
        while True:
            proc.compute(1e-6)
            proc.sync()

    for b in ("thread", backend):
        with pytest.raises(ValueError, match="boom"):
            run_spmd(3, main, backend=b)


def test_teardown_is_idempotent_after_success():
    eng = Engine(2, backend="thread")
    eng.spawn_all(lambda proc: proc.rank)
    result = eng.run()
    assert result.returns == [0, 1]
    eng._teardown()  # second teardown must be a no-op


# --------------------------------------------------------------------- #
# Exploration and replay on the trampoline backend
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "make_strat",
    [
        lambda: RandomWalk(seed=11),
        lambda: PctStrategy(seed=11),
        lambda: DelayInjector(seed=11),
    ],
    ids=["random-walk", "pct", "delay"],
)
@pytest.mark.parametrize("scenario", ["steals", "termination"])
def test_exploration_strategies_on_coro_match_thread(
    scenario, make_strat, monkeypatch
):
    """Every exploring strategy must drive the trampoline backend through
    the identical schedule it drives OS threads through."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", "thread")
    s_thread = make_strat()
    base = run_once(make_scenario(scenario), s_thread, engine_seed=0)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "coro")
    s_coro = make_strat()
    other = run_once(make_scenario(scenario), s_coro, engine_seed=0)
    assert other.events == base.events
    assert s_coro.decisions == s_thread.decisions


def test_replay_on_coro_reproduces_coro_recorded_trace(monkeypatch):
    """A trace recorded on the trampoline replays on the trampoline."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", "coro")
    walk = RandomWalk(seed=23)
    base = run_once(make_scenario("steals"), walk, engine_seed=0)
    replay = ReplayStrategy(list(walk.decisions))
    replayed = run_once(make_scenario("steals"), replay, engine_seed=0)
    assert replayed.events == base.events


class _CountingExplorer:
    """Minimal exploring strategy: picks the engine-default candidate."""

    explores = True

    def __init__(self):
        self.chooses = 0

    def begin(self, engine):
        pass

    def choose(self, candidates):
        self.chooses += 1
        return 0

    def delay(self, proc, site):
        return 0.0

    def on_park(self, proc, where):
        pass


def test_explores_disables_sync_elision():
    """An exploring strategy must see every sync as a decision point:
    the engine turns elision off so no handoff is skipped."""

    def main(proc):
        for _ in range(5):
            proc.advance(1e-6 * (proc.rank + 1))
            yield from proc.co_sync()

    plain = Engine(2, backend="coro")
    plain.spawn_all(main)
    plain.run()
    assert plain._elide is True  # default path keeps eliding

    strat = _CountingExplorer()
    eng = Engine(2, strategy=strat, backend="coro")
    eng.spawn_all(main)
    eng.run()
    assert eng._explores is True
    assert eng._elide is False
    assert strat.chooses > 0
    # Elided events are still counted, so a default-order explorer
    # reproduces the plain run's event count exactly.
    assert eng.events == plain.events


# --------------------------------------------------------------------- #
# Teardown robustness for generator contexts (coro backend)
# --------------------------------------------------------------------- #
def test_teardown_survives_unstarted_generators():
    """Ranks whose coroutines were never resumed (the generator analogue
    of a thread whose start() failed) must close cleanly, not hang."""
    import inspect

    def main(proc):
        if proc.rank == 0:
            raise RuntimeError("immediate failure")
        yield from proc.co_sleep(1e-6)

    eng = Engine(4, backend="coro")
    eng.spawn_all(main)
    with pytest.raises(RuntimeError, match="immediate failure"):
        eng.run()  # must raise promptly, not hang in teardown
    for proc in eng.procs[1:]:
        assert inspect.getgeneratorstate(proc._coro) == inspect.GEN_CLOSED


def test_teardown_kills_half_finished_generators():
    """Procs suspended mid-generator when another rank fails are unwound
    via SimShutdown thrown at their suspension point."""
    import inspect

    def main(proc):
        if proc.rank == 0:
            yield from proc.co_sleep(1e-6)
            raise ValueError("boom")
        yield from proc.co_park("forever")

    eng = Engine(3, backend="coro")
    eng.spawn_all(main)
    with pytest.raises(ValueError, match="boom"):
        eng.run()
    for proc in eng.procs[1:]:
        assert proc.finished
        assert inspect.getgeneratorstate(proc._coro) == inspect.GEN_CLOSED


def test_coro_kill_runs_user_cleanup():
    """A generator may catch SimShutdown for cleanup; the kill loop keeps
    control until it actually finishes."""
    cleaned = []

    def main(proc):
        if proc.rank == 0:
            yield from proc.co_sleep(1e-6)
            raise ValueError("boom")
        try:
            yield from proc.co_park("parked-for-shutdown")
        except SimShutdown:
            cleaned.append(proc.rank)
            raise

    eng = Engine(2, backend="coro")
    eng.spawn_all(main)
    with pytest.raises(ValueError, match="boom"):
        eng.run()
    assert cleaned == [1]
    assert eng.procs[1].finished


# --------------------------------------------------------------------- #
# Wake-delay validation (satellite: strategy-injected delays)
# --------------------------------------------------------------------- #
class _BadDelay:
    """Strategy stub injecting an invalid delay at one site."""

    explores = False

    def __init__(self, site, value):
        self.site = site
        self.value = value

    def begin(self, engine):
        self.engine = engine

    def choose(self, candidates):
        return 0

    def delay(self, proc, site):
        return self.value if site == self.site else 0.0

    def on_park(self, proc, where):
        pass


@pytest.mark.parametrize("value", [float("nan"), -10.0])
def test_wake_rejects_invalid_injected_delay(value):
    def main(proc):
        if proc.rank == 0:
            payload = proc.park(where="wait")
            return payload
        proc.advance(1e-6)
        proc.sync()
        proc.engine.wake(proc.engine.procs[0], proc.now, "hi")

    eng = Engine(2, strategy=_BadDelay("wake", value), backend="thread")
    eng.spawn_all(main)
    with pytest.raises(ValueError, match="site 'wake'"):
        eng.run()


@pytest.mark.parametrize("value", [float("nan"), -10.0])
def test_sync_rejects_invalid_injected_delay(value):
    def main(proc):
        proc.sync()

    eng = Engine(2, strategy=_BadDelay("sync", value), backend="thread")
    eng.spawn_all(main)
    with pytest.raises(ValueError, match="site 'sync'"):
        eng.run()


def test_wake_valid_delay_still_applies():
    class Delay(_BadDelay):
        def delay(self, proc, site):
            return 5e-6 if site == "wake" else 0.0

    def main(proc):
        if proc.rank == 0:
            proc.park(where="wait")
            return proc.now
        proc.advance(1e-6)
        proc.sync()
        proc.engine.wake(proc.engine.procs[0], proc.now)

    eng = Engine(2, strategy=Delay("wake", 0.0), backend="thread")
    eng.spawn_all(main)
    result = eng.run()
    assert result.returns[0] == pytest.approx(6e-6)
