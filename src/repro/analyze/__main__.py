"""Static and dynamic analysis for the Scioto runtime reproduction.

Subcommands:

* ``race`` — run check scenarios with the vector-clock race detector
  attached and report every conflicting, happens-before-unordered
  access pair.  Deterministic: one run per scenario suffices (see
  ``docs/analyze.md``).  Exits 1 if any race was found.
* ``lint`` — run the RPR rule suite over source trees.  Exits 1 if
  any finding survives suppression comments.

Examples::

    python -m repro.analyze race
    python -m repro.analyze race --target queue --mutate unlocked_split
    python -m repro.analyze lint src/repro
    python -m repro.analyze lint --rule RPR002 src tests
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.lint import RULES, lint_paths
from repro.analyze.runner import run_race_detection
from repro.check.mutations import MUTATIONS
from repro.check.scenarios import SCENARIOS


def _cmd_race(args: argparse.Namespace) -> int:
    targets = sorted(SCENARIOS) if args.target == "all" else [args.target]
    mutation = None if args.mutate == "none" else args.mutate
    total = 0
    for target in targets:
        res = run_race_detection(
            target, mutation=mutation, engine_seed=args.engine_seed
        )
        status = f"{len(res.races)} race(s)" if res.racy else "clean"
        print(
            f"{target}: {status} "
            f"({res.accesses} shared accesses, {res.events} events"
            + (f", run ended with {res.error}" if res.error else "")
            + ")"
        )
        if res.racy:
            for line in res.report.splitlines()[1:]:
                print(line)
        total += len(res.races)
    print(f"\ntotal: {total} race(s) across {len(targets)} scenario(s)"
          + (f" [mutation: {mutation}]" if mutation else ""))
    return 1 if total else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    rules = args.rule if args.rule else None
    findings, nfiles = lint_paths(args.paths, rules=rules)
    for f in findings:
        print(f)
    checked = ", ".join(sorted(rules)) if rules else f"{len(RULES)} rules"
    print(f"{len(findings)} finding(s) in {nfiles} file(s) [{checked}]")
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.analyze", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_race = sub.add_parser("race", help="vector-clock race detection")
    p_race.add_argument(
        "--target",
        choices=["all", *sorted(SCENARIOS)],
        default="all",
        help="scenario to run (default: all)",
    )
    p_race.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS),
        default="none",
        help="apply an intentional protocol bug first",
    )
    p_race.add_argument("--engine-seed", type=int, default=0)
    p_race.set_defaults(fn=_cmd_race)

    p_lint = sub.add_parser("lint", help="static RPR rule suite")
    p_lint.add_argument("paths", nargs="+", help="files or directories to lint")
    p_lint.add_argument(
        "--rule",
        action="append",
        choices=sorted(RULES),
        help="run only this rule (repeatable)",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
