"""The fleet meta-scheduler: split deques, stealing, quiescence waves.

This is the paper's scheduling loop lifted one level up: instead of
simulated ranks pulling task descriptors from split queues, host
workers pull simulation *jobs* from split deques
(:mod:`repro.fleet.wsqueue`).  The scheduler parent is single-threaded
and event-driven: it dispatches one job per idle worker, multiplexes
over result pipes and process sentinels
(:mod:`repro.fleet.pool`), and rebalances by stealing half of a
neighbour's shared portion when a worker's deque drains.

Termination mirrors :mod:`repro.core.termination`'s wave algorithm
structurally: when the parent believes the fleet is passive (no
in-flight jobs, all deques empty) it runs a *wave* — folding per-worker
WHITE/BLACK votes up the same binary spanning tree the simulated
protocol uses.  Any activity since a worker's last vote (a dispatched
job, a steal from its deque, a requeue landing on it) marks it dirty
and blackens the wave, forcing another round; only an all-white wave
declares the campaign done.  In a single-threaded parent a plain
counter check would suffice — the wave detector is the dogfooded
version, and its cross-check (completed + failed + crashed == submitted)
is what guarantees no job is ever silently dropped.

Worker crashes are first-class: a worker that dies mid-job (SIGKILL,
OOM, segfault) is detected via its process sentinel, its job is
requeued exactly once, and a second death of the same job lands it in
``report.crashed`` — flagged, never dropped.  The dead seat is
respawned so fleet capacity is maintained.

Fleet-level metrics stream through the existing observability registry
(:class:`repro.obs.metrics.MetricsRegistry`) with worker ids as ranks:
``jobs_done``/``steals``/``requeues`` counters, ``job_wall``
histograms, and a ``fleet_occupancy`` gauge; worker-side metric
snapshots riding on job results are merged in via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_dict`.  Histogram
snapshots carry their quantile sketches, and sketch merging is exact
(bucket-wise add), so fleet-aggregated percentiles equal what one
process observing every worker's stream would report.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.fleet.jobs import Job, JobResult
from repro.fleet.pool import InlinePool, ProcessPool
from repro.fleet.wsqueue import WorkerDeque, neighbor_order
from repro.obs.metrics import MetricsRegistry

__all__ = ["FleetScheduler", "FleetReport", "QuiescenceDetector"]

_WHITE = 0
_BLACK = 1

#: Pipe-multiplex timeout while jobs are in flight (seconds).
_POLL_TIMEOUT = 0.05


class QuiescenceDetector:
    """Wave-based passivity detection over the worker set.

    The host-level analogue of :class:`repro.core.termination.
    TerminationDetector`: per-worker dirty flags stand in for the §5.3
    dirty marks (a steal or a requeue dirties the *victim*, exactly as
    a thief marks its victim in the simulated protocol), and votes fold
    bottom-up over the binary spanning tree (children of ``w`` are
    ``2w+1``/``2w+2``).  A wave only runs while the scheduler observes
    no in-flight jobs; it returns WHITE — and latches ``done`` — only
    if every deque is empty and no worker was dirtied since its last
    vote.
    """

    def __init__(self, nworkers: int) -> None:
        self.nworkers = nworkers
        self.dirty = [False] * nworkers
        self.waves = 0
        self.done = False

    def mark_dirty(self, worker: int) -> None:
        self.dirty[worker] = True

    def wave(self, deques: list[WorkerDeque], in_flight: int) -> bool:
        """Run one wave; returns True when quiescence is established."""
        if self.done:
            return True
        self.waves += 1
        # Up-wave: leaves vote first; a child's black token blackens its
        # ancestors, mirroring _combined_color in core/termination.py.
        votes = [
            _BLACK if (self.dirty[w] or not deques[w].empty()) else _WHITE
            for w in range(self.nworkers)
        ]
        for w in range(self.nworkers - 1, 0, -1):
            parent = (w - 1) // 2
            votes[parent] = max(votes[parent], votes[w])
        root = _BLACK if in_flight else votes[0] if votes else _WHITE
        # Voting resets each worker's dirty flag for the next wave.
        self.dirty = [False] * self.nworkers
        if root == _WHITE:
            self.done = True
        return self.done


@dataclass
class FleetReport:
    """Everything one :meth:`FleetScheduler.run` campaign produced."""

    nworkers: int
    jobs_total: int
    completed: list[JobResult] = field(default_factory=list)
    #: Jobs whose worker died twice: flagged, never silently dropped.
    crashed: list[dict[str, Any]] = field(default_factory=list)
    requeued_keys: list[str] = field(default_factory=list)
    steals: int = 0
    jobs_stolen: int = 0
    waves: int = 0
    worker_deaths: int = 0
    wall_s: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def failed_results(self) -> list[JobResult]:
        """Results that came back carrying a job-level error."""
        return [r for r in self.completed if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.crashed and not self.failed_results

    @property
    def jobs_per_sec(self) -> float:
        return len(self.completed) / self.wall_s if self.wall_s > 0 else 0.0

    def accounted(self) -> int:
        """Jobs with a known fate; the scheduler asserts this equals
        ``jobs_total`` before returning (nothing silently dropped)."""
        return len(self.completed) + len(self.crashed)


class FleetScheduler:
    """Work-stealing dispatcher over a pool of simulation workers."""

    def __init__(
        self,
        nworkers: int,
        inline: bool = False,
        start_method: str | None = None,
        max_requeues: int = 1,
        release_threshold: int = 2,
        progress: Callable[[dict[str, Any]], None] | None = None,
        progress_interval: float = 0.5,
        flight_dir: str | Path | None = None,
    ) -> None:
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.nworkers = nworkers
        self.inline = inline
        self.start_method = start_method
        self.max_requeues = max_requeues
        self.release_threshold = release_threshold
        self.progress = progress
        self.progress_interval = progress_interval
        #: When set, workers arm the crash flight recorder there and the
        #: scheduler writes a ``fleet-crash-w<worker>-<n>.json`` report
        #: beside the worker's flight dump on every death.
        self.flight_dir = None if flight_dir is None else Path(flight_dir)

    # ------------------------------------------------------------------ #
    # Campaign entry point
    # ------------------------------------------------------------------ #
    def run(self, jobs: list[Job]) -> FleetReport:
        """Execute ``jobs`` to quiescence and return the fleet report."""
        keys = [j.key for j in jobs]
        if len(set(keys)) != len(keys):
            raise ValueError("job keys must be unique within a campaign")
        report = FleetReport(nworkers=self.nworkers, jobs_total=len(jobs))
        # All wall-clock below is sanctioned host-side scheduling time.
        t0 = time.perf_counter()  # repro: lint-disable=RPR002
        if not jobs:
            # Still exercise the detector: an empty campaign quiesces on
            # the first wave (nothing was ever dirtied).
            detector = QuiescenceDetector(self.nworkers)
            deques = [WorkerDeque(w, self.release_threshold) for w in range(self.nworkers)]
            detector.wave(deques, in_flight=0)
            report.waves = detector.waves
            report.wall_s = time.perf_counter() - t0  # repro: lint-disable=RPR002
            return report
        if self.flight_dir is not None:
            self.flight_dir.mkdir(parents=True, exist_ok=True)
        flight_dir = None if self.flight_dir is None else str(self.flight_dir)
        pool = (
            InlinePool(self.nworkers, flight_dir=flight_dir)
            if self.inline
            else ProcessPool(
                self.nworkers,
                start_method=self.start_method,
                flight_dir=flight_dir,
            )
        )
        try:
            self._run_loop(jobs, pool, report)
        finally:
            pool.close()
        report.wall_s = time.perf_counter() - t0  # repro: lint-disable=RPR002
        if report.accounted() != report.jobs_total:  # pragma: no cover - invariant
            raise RuntimeError(
                f"fleet dropped work: {report.accounted()} of "
                f"{report.jobs_total} jobs accounted for"
            )
        return report

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _run_loop(self, jobs: list[Job], pool, report: FleetReport) -> None:
        metrics = report.metrics
        deques = [WorkerDeque(w, self.release_threshold) for w in range(self.nworkers)]
        detector = QuiescenceDetector(self.nworkers)
        # Initial distribution: contiguous blocks, so jobs of one target
        # land on one worker (locality) and stealing restores balance.
        for i, job in enumerate(jobs):
            w = i * self.nworkers // len(jobs)
            deques[w].push(job)
            detector.mark_dirty(w)
        idle: set[int] = set(range(self.nworkers))
        in_flight: dict[int, Job] = {}
        last_progress = t_start = time.perf_counter()  # repro: lint-disable=RPR002

        while True:
            for w in sorted(idle):
                job = self._acquire(w, deques, detector, metrics, report)
                if job is None:
                    continue
                job.attempts += 1
                in_flight[w] = job
                idle.discard(w)
                pool.send(w, job)
            metrics.sample("fleet_occupancy", 0, len(in_flight) / self.nworkers)
            if not in_flight:
                if all(d.empty() for d in deques):
                    if detector.wave(deques, in_flight=0):
                        break
                    continue
                continue  # idle workers will pick the remaining jobs up
            for event in pool.poll(_POLL_TIMEOUT):
                if event.kind == "result":
                    self._on_result(event.worker, event.result, in_flight,
                                    detector, metrics, report)
                    idle.add(event.worker)
                else:  # crash
                    self._on_crash(event.worker, deques, in_flight, pool,
                                   detector, metrics, report)
                    idle.add(event.worker)
            now = time.perf_counter()  # repro: lint-disable=RPR002
            if self.progress is not None and (
                now - last_progress >= self.progress_interval
            ):
                last_progress = now
                self.progress(self._progress_stats(report, in_flight, now - t_start))
        report.waves = detector.waves

    # ------------------------------------------------------------------ #
    # Job acquisition: own deque, then neighbor-first steal-half
    # ------------------------------------------------------------------ #
    def _acquire(
        self,
        w: int,
        deques: list[WorkerDeque],
        detector: QuiescenceDetector,
        metrics: MetricsRegistry,
        report: FleetReport,
    ) -> Job | None:
        job = deques[w].pop()
        if job is not None:
            return job
        for victim in neighbor_order(w, self.nworkers):
            chunk = deques[victim].steal_half()
            if chunk:
                deques[w].push_all(chunk)
                # Mirror §5.3: the steal dirties the victim (its queue
                # changed behind its back) as well as the thief.
                detector.mark_dirty(victim)
                detector.mark_dirty(w)
                report.steals += 1
                report.jobs_stolen += len(chunk)
                metrics.add(w, "steals")
                metrics.add(w, "jobs_stolen", len(chunk))
                metrics.observe("steal_chunk_jobs", len(chunk), rank=w)
                return deques[w].pop()
        return None

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #
    def _on_result(
        self,
        w: int,
        result: JobResult,
        in_flight: dict[int, Job],
        detector: QuiescenceDetector,
        metrics: MetricsRegistry,
        report: FleetReport,
    ) -> None:
        in_flight.pop(w, None)
        detector.mark_dirty(w)
        report.completed.append(result)
        metrics.add(w, "jobs_done")
        if not result.ok:
            metrics.add(w, "jobs_failed")
        metrics.observe("job_wall", result.wall_s, rank=w)
        payload_metrics = result.payload.get("metrics")
        if payload_metrics:
            metrics.merge_dict(payload_metrics, into_rank=w)

    def _on_crash(
        self,
        w: int,
        deques: list[WorkerDeque],
        in_flight: dict[int, Job],
        pool,
        detector: QuiescenceDetector,
        metrics: MetricsRegistry,
        report: FleetReport,
    ) -> None:
        report.worker_deaths += 1
        metrics.add(w, "worker_deaths")
        detector.mark_dirty(w)
        job = in_flight.pop(w, None)
        fate = "idle"
        if job is not None:
            fate = "requeued" if job.attempts <= self.max_requeues else "crashed"
        if self.flight_dir is not None:
            self._write_crash_report(w, job, fate, pool, report)
        if job is not None:
            if job.attempts <= self.max_requeues:
                # Requeue exactly once (attempts counts dispatches): the
                # respawned seat's own deque gets it back, and the dirty
                # mark forces another quiescence wave.
                deques[w].push(job)
                report.requeued_keys.append(job.key)
                metrics.add(w, "requeues")
            else:
                report.crashed.append(
                    {
                        "key": job.key,
                        "kind": job.kind,
                        "attempts": job.attempts,
                        "error": f"worker {w} died while running this job "
                        f"(attempt {job.attempts})",
                    }
                )
                metrics.add(w, "jobs_crashed")
        pool.respawn(w)

    def _write_crash_report(
        self, w: int, job: Job | None, fate: str, pool, report: FleetReport
    ) -> None:
        """Persist what is known about a worker death next to its flight
        dump: the in-flight job, the dead pid, and the worker's last
        breadcrumb (its own view of what it was running when killed)."""
        from repro.fleet.worker import breadcrumb_path
        from repro.util.io import atomic_write_text

        breadcrumb = None
        try:
            breadcrumb = json.loads(
                breadcrumb_path(self.flight_dir, w).read_text()
            )
        except (OSError, ValueError):
            pass  # worker died before its first breadcrumb
        doc = {
            "schema": "repro-fleet-crash/1",
            "worker": w,
            "pid": pool.pid(w),
            "death_number": report.worker_deaths,
            "job": None
            if job is None
            else {"key": job.key, "kind": job.kind, "attempts": job.attempts},
            "job_fate": fate,
            "breadcrumb": breadcrumb,
        }
        path = self.flight_dir / f"fleet-crash-w{w}-{report.worker_deaths}.json"
        try:
            atomic_write_text(path, json.dumps(doc, indent=2))
        except OSError:  # pragma: no cover - reporting is best-effort
            pass

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    def _progress_stats(
        self, report: FleetReport, in_flight: dict[int, Job], elapsed: float
    ) -> dict[str, Any]:
        done = len(report.completed)
        return {
            "done": done,
            "total": report.jobs_total,
            "in_flight": len(in_flight),
            "occupancy": len(in_flight) / self.nworkers,
            "jobs_per_sec": done / elapsed if elapsed > 0 else 0.0,
            "steals": report.steals,
            "requeues": len(report.requeued_keys),
            "wall_s": elapsed,
        }
