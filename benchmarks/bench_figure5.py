"""Figure 5: SCF & TCE parallel speedup, Scioto vs Original."""

from repro.bench.figure56 import run_figure56
from repro.bench.harness import scale
from repro.bench.report import render


def test_figure5_speedup(benchmark):
    result = benchmark.pedantic(run_figure56, args=(scale(),), rounds=1, iterations=1)
    speedups = [s for s in result.series if s.label.endswith("speedup")]
    view = type(result)(experiment="figure5 (speedup)", series=speedups,
                        notes=result.notes)
    print("\n" + render(view, fmt="{:.2f}"))
    scf = result.get("SCF-speedup")
    scf_o = result.get("SCF-Original-speedup")
    tce = result.get("TCE-speedup")
    tce_o = result.get("TCE-Original-speedup")
    big = max(scf.xs)
    # all configurations speed up
    for s in (scf, scf_o, tce, tce_o):
        assert s.y_at(big) > s.y_at(min(s.xs))
    # TCE: Scioto clearly ahead of the counter scheme (paper: ~3x at 64)
    assert tce.y_at(big) > 1.25 * tce_o.y_at(big)
    # SCF: comparable at small scale (within 20%)...
    small = min(scf.xs)
    assert scf.y_at(small) > 0.8 * scf_o.y_at(small)
    # ...and at the paper's 64 procs the Original flattens behind Scioto
    if big >= 64:
        assert scf.y_at(big) > scf_o.y_at(big)
