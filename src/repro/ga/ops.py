"""Whole-array GA operations: dgop, add, scale, copy, dot, symmetrize.

These are the collective convenience operations the GA toolkit provides
on top of one-sided patch access.  All are *collective*: every rank
calls with the same arguments; each rank works on its own patch and the
runtime synchronizes and reduces as needed, charging local memory
bandwidth and reduction costs through the machine model.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.armci.runtime import Armci
from repro.ga.array import GlobalArray
from repro.sim.engine import Proc, blocking
from repro.util.errors import CommError

__all__ = [
    "ga_dgop", "ga_add", "ga_scale", "ga_copy", "ga_dot", "ga_symmetrize",
    "co_ga_dgop", "co_ga_add", "co_ga_scale", "co_ga_copy", "co_ga_dot",
    "co_ga_symmetrize",
]


def _check_conformant(*arrays: GlobalArray) -> None:
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise CommError(f"arrays not conformant: {sorted(shapes)}")


def _local_cost(proc: Proc, *patches: np.ndarray) -> None:
    nbytes = sum(p.nbytes for p in patches)
    proc.advance(proc.machine.local_copy_time(nbytes))


def co_ga_dgop(proc: Proc, value: float, op: Callable[[float, float], float]):
    """Global reduction of a scalar contribution (GA_Dgop)."""
    return (yield from Armci.attach(proc.engine).co_allreduce(proc, value, op))


def co_ga_add(
    proc: Proc,
    alpha: float,
    a: GlobalArray,
    beta: float,
    b: GlobalArray,
    c: GlobalArray,
):
    """``C = alpha*A + beta*B`` elementwise (GA_Add); collective."""
    _check_conformant(a, b, c)
    pa, pb, pc = a.access(proc), b.access(proc), c.access(proc)
    _local_cost(proc, pa, pb, pc)
    pc[...] = alpha * pa + beta * pb
    yield from c.co_sync(proc)


def co_ga_scale(proc: Proc, a: GlobalArray, alpha: float):
    """``A *= alpha`` (GA_Scale); collective."""
    patch = a.access(proc)
    _local_cost(proc, patch)
    patch *= alpha
    yield from a.co_sync(proc)


def co_ga_copy(proc: Proc, src: GlobalArray, dst: GlobalArray):
    """``B = A`` (GA_Copy); collective, patch-to-patch (same distribution)."""
    _check_conformant(src, dst)
    ps, pd = src.access(proc), dst.access(proc)
    _local_cost(proc, ps, pd)
    pd[...] = ps
    yield from dst.co_sync(proc)


def co_ga_dot(proc: Proc, a: GlobalArray, b: GlobalArray):
    """Global inner product ``sum(A * B)`` (GA_Ddot); collective."""
    _check_conformant(a, b)
    pa, pb = a.access(proc), b.access(proc)
    _local_cost(proc, pa, pb)
    proc.compute(2.0 * pa.size * proc.machine.seconds_per_flop)
    local = float(np.sum(pa * pb))
    return (yield from co_ga_dgop(proc, local, lambda x, y: x + y))


def co_ga_symmetrize(proc: Proc, a: GlobalArray):
    """``A = (A + A^T) / 2`` (GA_Symmetrize) for square 2-D arrays.

    Implemented the way GA does: each rank fetches the transposed patch
    corresponding to its own, then averages locally.
    """
    if len(a.shape) != 2 or a.shape[0] != a.shape[1]:
        raise CommError("ga_symmetrize requires a square 2-D array")
    lo, hi = a.distribution(proc.rank)
    yield from a.co_sync(proc)
    if all(h > l for l, h in zip(lo, hi)):
        transposed = yield from a.co_get(proc, (lo[1], lo[0]), (hi[1], hi[0]))
        patch = a.access(proc)
        _local_cost(proc, patch)
        # barrier below orders writes after every rank's fetch
        pending = (patch + transposed.T) / 2.0
    else:
        pending = None
    yield from a.co_sync(proc)
    if pending is not None:
        a.access(proc)[...] = pending
    yield from a.co_sync(proc)


ga_dgop = blocking(co_ga_dgop)
ga_add = blocking(co_ga_add)
ga_scale = blocking(co_ga_scale)
ga_copy = blocking(co_ga_copy)
ga_dot = blocking(co_ga_dot)
ga_symmetrize = blocking(co_ga_symmetrize)
