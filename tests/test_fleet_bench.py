"""BENCH_fleet.json: schema validation, the diff walker, and writes."""

from __future__ import annotations

import copy
import json

import pytest

from repro.fleet.bench import (
    FLEET_SCHEMA,
    run_fleet_bench,
    validate_fleet_json,
    write_fleet_json,
)
from repro.obs.diff import diff_documents


def make_doc(digest="abc123", levels=(1, 2)):
    return {
        "schema": FLEET_SCHEMA,
        "host": {"platform": "test", "python": "3.x", "cpus": 4},
        "entries": [
            {
                "jobs": n,
                "scenarios": ["queue"],
                "strategy": "random",
                "seed": 0,
                "schedules": 40,
                "events": 4000,
                "wall_s": 2.0 / n,
                "schedules_per_sec": 20.0 * n,
                "steals": 0,
                "jobs_stolen": 0,
                "waves": 2,
                "requeues": 0,
                "failures": 0,
                "failing_digest": digest,
                "speedup": float(n),
            }
            for n in levels
        ],
    }


class TestValidation:
    def test_valid_document_passes(self):
        validate_fleet_json(make_doc())

    def test_digest_mismatch_across_levels_rejected(self):
        doc = make_doc()
        doc["entries"][1]["failing_digest"] = "different"
        with pytest.raises(ValueError, match="failing_digest differs"):
            validate_fleet_json(doc)

    def test_missing_host_cpus_rejected(self):
        doc = make_doc()
        del doc["host"]["cpus"]
        with pytest.raises(ValueError, match="host.cpus"):
            validate_fleet_json(doc)

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(schema="nope/9"), "schema"),
            (lambda d: d.update(entries=[]), "non-empty"),
            (lambda d: d["entries"][0].update(jobs=0), "jobs"),
            (lambda d: d["entries"][0].update(schedules=0), "schedules"),
            (lambda d: d["entries"][0].update(schedules_per_sec=0.0),
             "schedules_per_sec"),
            (lambda d: d["entries"][0].update(failing_digest=""),
             "failing_digest"),
        ],
    )
    def test_malformed_documents_rejected(self, mutate, fragment):
        doc = make_doc()
        mutate(doc)
        with pytest.raises(ValueError, match=fragment):
            validate_fleet_json(doc)


class TestWrite:
    def test_write_validates_then_roundtrips(self, tmp_path):
        path = tmp_path / "BENCH_fleet.json"
        out = write_fleet_json(make_doc(), path)
        assert out == path
        assert json.loads(path.read_text())["schema"] == FLEET_SCHEMA
        # Atomic write: no temp files survive.
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_fleet.json"]

    def test_write_rejects_invalid_without_touching_path(self, tmp_path):
        path = tmp_path / "BENCH_fleet.json"
        doc = make_doc()
        doc["entries"][1]["failing_digest"] = "different"
        with pytest.raises(ValueError):
            write_fleet_json(doc, path)
        assert not path.exists()


class TestFleetDiff:
    def test_identical_documents_are_clean(self):
        doc = make_doc()
        report = diff_documents(doc, copy.deepcopy(doc))
        assert report.ok
        assert report.changes == []

    def test_throughput_drop_regresses(self):
        old, new = make_doc(), make_doc()
        new["entries"][0]["schedules_per_sec"] *= 0.5
        report = diff_documents(old, new)
        assert not report.ok
        (entry,) = report.regressions
        assert entry.key == "fleet[jobs=1]"
        assert entry.metric == "schedules_per_sec"

    def test_throughput_gain_is_an_improvement(self):
        old, new = make_doc(), make_doc()
        new["entries"][0]["schedules_per_sec"] *= 2.0
        assert diff_documents(old, new).ok

    def test_digest_drift_is_a_mismatch(self):
        old, new = make_doc("aaa"), make_doc("bbb")
        report = diff_documents(old, new)
        assert not report.ok
        assert any(e.metric == "failing_digest" for e in report.regressions)

    def test_schedule_count_drift_is_exact_mismatch(self):
        old, new = make_doc(), make_doc()
        new["entries"][1]["schedules"] += 1  # +2.5%: below threshold, still flagged
        report = diff_documents(old, new)
        assert any(
            e.metric == "schedules" and e.status == "mismatch"
            for e in report.entries
        )

    def test_added_level_reported(self):
        old, new = make_doc(levels=(1,)), make_doc(levels=(1, 2))
        report = diff_documents(old, new)
        assert any(e.status == "added" for e in report.entries)


class TestRunFleetBench:
    def test_tiny_sweep_produces_a_valid_committed_shape(self):
        """End-to-end: a real (tiny) sweep through the process pool must
        produce a document the validator and the differ both accept."""
        doc = run_fleet_bench(
            jobs_levels=(1, 2), targets=["queue"], schedules=6, verbose=False
        )
        validate_fleet_json(doc)
        assert [e["jobs"] for e in doc["entries"]] == [1, 2]
        assert doc["entries"][0]["speedup"] == 1.0
        assert diff_documents(doc, copy.deepcopy(doc)).ok
