"""ARMCI-like one-sided communication layer over the simulator.

Provides the primitives the paper's runtime is built on: one-sided
put/get/accumulate, remote atomic read-modify-write, mutexes, one-sided
messages (mailboxes), fences and barriers.  Costs are charged through
the machine model; semantics (remote completion ordering, lock
contention, atomic serialization at the target NIC) follow ARMCI.
"""

from repro.armci.runtime import Armci
from repro.armci.collectives import armci_barrier_cost, mpi_barrier_cost

__all__ = ["Armci", "armci_barrier_cost", "mpi_barrier_cost"]
