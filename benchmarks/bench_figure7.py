"""Figure 7: UTS on the heterogeneous cluster — split vs MPI vs no-split."""

from repro.bench.figure7 import run_figure7
from repro.bench.harness import scale
from repro.bench.report import render


def test_figure7_uts_cluster(benchmark):
    result = benchmark.pedantic(run_figure7, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, fmt="{:.2f}"))
    split = result.get("Split-Queues")
    mpi = result.get("MPI-WS")
    nosplit = result.get("No-Split")
    for p in split.xs:
        # paper ordering at every scale: split > MPI > no-split
        assert split.y_at(p) > mpi.y_at(p), p
        assert mpi.y_at(p) > nosplit.y_at(p), p
    big = max(split.xs)
    # split queues vs locked queues: roughly a 2x gap at scale (Fig. 7)
    assert split.y_at(big) > 1.5 * nosplit.y_at(big)
    # throughput grows with processors for both real contenders
    assert split.y_at(big) > 2.0 * split.y_at(min(split.xs))
    assert mpi.y_at(big) > 2.0 * mpi.y_at(min(mpi.xs))
