"""Sampling self-profiler: host wall-time attribution by runtime subsystem.

PR 9 left the 10x wall-clock target blocked on an attribution gap: per
event cost is dominated by "runtime work", with no breakdown of which
runtime.  This module answers that with a stdlib-only sampling profiler:
a daemon thread snapshots the main thread's Python stack
(``sys._current_frames()``) at a fixed host-time interval and buckets
each sample into a named subsystem — the map that directs the next round
of hot-path work.

Bucketing walks the sampled stack innermost-out: a stack inside
``heapq`` is the event heap; otherwise the innermost ``repro`` frame
decides (backend switch machinery, engine core, cost model, task queue,
steal protocol, termination waves, observability hooks, application
body, ARMCI layer), so time spent in stdlib helpers is charged to the
runtime layer that called them.  Samples with no ``repro`` frame at all
(interpreter housekeeping, thread startup) fall into ``other`` —
attribution of everything else to a *named* subsystem is the acceptance
bar, and fractions always sum to 1 over the recorded samples.

The sampler works because every simulated rank runs on the host main
thread under the default ``coro`` backend (and under ``thread`` backends
exactly one rank runs at a time); it observes wall time, so it lives in
``repro.bench`` next to the other sanctioned wall-clock sites and is
never active during virtual-time measurement.

Use ``python -m repro.bench perf --profile`` to run it per scenario and
persist the tables into ``BENCH_wall.json`` under ``notes.profile``.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from typing import Any

__all__ = ["SUBSYSTEMS", "SubsystemProfiler", "attribute_stack", "render_attribution"]

#: Ordered (subsystem, module-path fragments) — first match on the
#: innermost repro frame wins; ``repro/`` last as the catch-all so every
#: runtime frame lands in a named bucket.
SUBSYSTEMS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("switch", ("repro/sim/backends",)),
    ("engine", ("repro/sim/engine",)),
    ("cost-model", ("repro/sim/machines", "repro/sim/resources")),
    ("queue", ("repro/core/queue", "repro/core/collection")),
    ("task", ("repro/core/task", "repro/core/capi")),
    ("steal", ("repro/core/stealing", "repro/core/scheduler")),
    ("termination", ("repro/core/termination",)),
    ("obs-hooks", ("repro/obs/", "repro/analyze/hooks")),
    ("app-body", ("repro/apps/",)),
    ("armci", ("repro/armci/", "repro/ga/")),
    ("runtime-other", ("repro/",)),
)

#: Stdlib modules whose innermost frames get their own bucket even
#: though they are not repro code: the event heap is a first-class
#: subsystem in the per-event cost story.
_HEAP_MODULES = ("heapq.py",)


def attribute_stack(frame: Any) -> str:
    """Name the subsystem owning one sampled stack (see module doc)."""
    filename = frame.f_code.co_filename
    if filename.endswith(_HEAP_MODULES):
        return "heap"
    f = frame
    while f is not None:
        fn = f.f_code.co_filename.replace("\\", "/")
        pos = fn.rfind("repro/")
        if pos != -1:
            tail = fn[pos:]
            for name, fragments in SUBSYSTEMS:
                if any(tail.startswith(frag) for frag in fragments):
                    return name
        f = f.f_back
    return "other"


class SubsystemProfiler:
    """Samples the main thread's stack from a daemon thread.

    Usage::

        prof = SubsystemProfiler()
        prof.start()
        ...workload on the main thread...
        table = prof.stop()   # {"samples": N, "fractions": {...}}
    """

    def __init__(self, interval: float = 0.001) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be > 0")
        self.interval = interval
        self.counts: Counter[str] = Counter()
        self._target_ident = threading.get_ident()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _sample_loop(self) -> None:
        # Host-time pacing for a host-time profiler (wall-clock sampling
        # is the point; the simulation's virtual clocks are untouched).
        # Event.wait doubles as the sleep so stop() never blocks a full
        # interval.
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is not None:
                self.counts[attribute_stack(frame)] += 1

    def start(self) -> "SubsystemProfiler":
        """Begin sampling the *calling* thread from a daemon thread."""
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-selfprof", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, Any]:
        """Stop sampling and return the attribution table."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        return self.table()

    def table(self) -> dict[str, Any]:
        """``{"samples": N, "fractions": {subsystem: share}}`` (sums to 1)."""
        total = sum(self.counts.values())
        fractions = {
            name: self.counts[name] / total
            for name in sorted(self.counts, key=lambda n: -self.counts[n])
        } if total else {}
        named = sum(f for n, f in fractions.items() if n != "other")
        return {"samples": total, "fractions": fractions, "named": named}


def render_attribution(table: dict[str, Any], indent: str = "  ") -> str:
    """One aligned text block per attribution table."""
    fractions = table.get("fractions") or {}
    if not fractions:
        return f"{indent}(no samples)"
    width = max(len(n) for n in fractions)
    lines = [
        f"{indent}{name.ljust(width)}  {frac:7.1%}"
        for name, frac in fractions.items()
    ]
    lines.append(
        f"{indent}{'named subsystems'.ljust(width)}  "
        f"{table.get('named', 0.0):7.1%} of {table.get('samples', 0)} samples"
    )
    return "\n".join(lines)
