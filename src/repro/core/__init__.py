"""Scioto: shared collections of task objects (the paper's contribution).

Public API mirrors §3 of the paper:

* :class:`TaskCollection` — ``create`` / ``add`` / ``process`` / ``reset``
  / ``destroy`` plus callback and common-local-object registration.
* :class:`Task` — a task descriptor (header + opaque user body).
* :class:`SciotoConfig` — runtime knobs: split vs locked queues, steal
  chunk size, locality-aware stealing, termination-detector options.

See ``repro.core.capi`` for a facade matching the paper's C names
(``tc_create``, ``tc_add``, ``tc_process``, ...).
"""

from repro.core.config import SciotoConfig
from repro.core.task import Task, AFFINITY_HIGH, AFFINITY_LOW, TASK_HEADER_BYTES
from repro.core.collection import TaskCollection
from repro.core.stats import ProcessStats
from repro.core.queue import SplitQueue
from repro.core.termination import TerminationDetector
from repro.core.graph import TaskGraph

__all__ = [
    "TaskCollection",
    "Task",
    "SciotoConfig",
    "ProcessStats",
    "SplitQueue",
    "TerminationDetector",
    "TaskGraph",
    "AFFINITY_HIGH",
    "AFFINITY_LOW",
    "TASK_HEADER_BYTES",
]
