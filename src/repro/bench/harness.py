"""Shared benchmark plumbing: scale selection and sweep helpers."""

from __future__ import annotations

import os

__all__ = ["scale", "sweep_procs", "QUICK", "FULL"]

QUICK = "quick"
FULL = "full"


def scale(override: str | None = None) -> str:
    """The active benchmark scale (``quick`` or ``full``).

    Priority: explicit ``override`` argument, then the ``REPRO_SCALE``
    environment variable, then ``quick``.
    """
    s = override or os.environ.get("REPRO_SCALE", QUICK)
    if s not in (QUICK, FULL):
        raise ValueError(f"unknown scale {s!r}; use 'quick' or 'full'")
    return s


def sweep_procs(scale_name: str, max_full: int = 64, max_quick: int = 16) -> list[int]:
    """Power-of-two process counts for a scaling sweep."""
    limit = max_full if scale_name == FULL else max_quick
    out = []
    p = 2
    while p <= limit:
        out.append(p)
        p *= 2
    return out
