"""Pluggable context-switch backends for the simulation engine.

The engine's scheduling semantics — one simulated process runs at a
time, chosen by the ``(virtual time, insertion sequence)`` heap — are
independent of *how* control physically moves between process contexts.
That mechanism lives here, behind :class:`SwitchBackend`:

``thread``
    One OS thread per process, handed control through raw
    ``_thread`` locks.  The scheduling decision runs in the *yielding*
    thread and control passes directly to the next process: one kernel
    handoff per event.  Always available; the fallback default.

``greenlet``
    One greenlet per process on a single OS thread; switches are plain
    user-level stack switches (no kernel involvement, no GIL handoff).
    Selected automatically when the optional ``greenlet`` package is
    importable.

``thread-sem``
    The seed implementation's mechanism, kept as a measurable
    reference: every event bounces through a central engine thread via
    ``threading.Semaphore`` pairs — two kernel handoffs per event.
    Never auto-selected; exists so ``repro.bench perf`` can quantify
    the switch-engine speedup against the original design run after
    run (see ``docs/performance.md``).

Backend choice is per-:class:`~repro.sim.engine.Engine`
(``Engine(..., backend=...)``) with an environment override
(``REPRO_SIM_BACKEND``) so whole runs — benchmarks, the model checker,
the test suite — can be flipped without touching call sites.  Every
backend executes the identical dispatch code, so results are
bit-for-bit identical across backends; ``tests/test_sim_backends.py``
enforces this.

A *context* is either a :class:`~repro.sim.engine.Proc` or ``None``
for the engine context (the caller of ``Engine.run()``).  Exactly one
context is ever runnable; backends only implement the transfer.
"""

from __future__ import annotations

import os
import threading
import _thread
from typing import TYPE_CHECKING, Callable

from repro.util.errors import SimShutdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, Proc

try:
    from greenlet import greenlet as _greenlet
except ImportError:  # pragma: no cover - exercised where greenlet is absent
    _greenlet = None

__all__ = [
    "SwitchBackend",
    "ThreadBackend",
    "GreenletBackend",
    "SemaphoreThreadBackend",
    "BACKENDS",
    "ENV_BACKEND",
    "available_backends",
    "greenlet_available",
    "resolve_backend_name",
    "make_backend",
]

#: Environment variable consulted when ``backend="auto"``.
ENV_BACKEND = "REPRO_SIM_BACKEND"


class SwitchBackend:
    """How control moves between the engine and its simulated processes.

    Subclasses implement the five hooks below.  ``src``/``dst`` are
    contexts: a ``Proc``, or ``None`` for the engine context.  The
    engine guarantees that at most one context runs at a time and that
    every ``switch``/``exit_to`` names a context that is currently
    suspended (or, for a fresh proc, spawned but never resumed).
    """

    name: str = "abstract"

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine

    def prepare(self) -> None:
        """Called once at the start of ``Engine.run()``, in the engine
        context, before any ``spawn``."""

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        """Create the execution context for ``proc``.  ``main`` is a
        zero-argument callable; it must not run until the first
        ``switch``/``exit_to`` targeting ``proc``."""
        raise NotImplementedError

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        """Transfer control from ``src`` (the caller) to ``dst``;
        return when ``src`` is next resumed."""
        raise NotImplementedError

    def exit_to(self, dst: "Proc | None") -> None:
        """Final transfer out of a finishing process context; the
        caller never runs again."""
        raise NotImplementedError

    def kill(self, proc: "Proc") -> None:
        """Unwind one unfinished process context during teardown.

        Called from the engine context with ``engine._shutdown`` set.
        Must be a no-op for contexts that already finished or whose
        execution context never actually started (e.g. a thread whose
        ``start()`` failed) — see ``tests/test_sim_backends.py``.
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Called once after teardown; release backend resources."""


class ThreadBackend(SwitchBackend):
    """One OS thread per process, direct handoff through raw locks.

    Each context owns a pre-acquired ``_thread`` lock it blocks on; a
    switch releases the destination's lock and re-acquires the
    caller's.  Raw locks are C-level (no ``threading.Condition``
    machinery) and the direct handoff skips the seed design's bounce
    through the engine thread, so an event costs one kernel wakeup
    instead of two semaphore round trips.
    """

    name = "thread"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        self._engine_lock = _thread.allocate_lock()
        self._engine_lock.acquire()

    def _lock_of(self, ctx: "Proc | None"):
        return self._engine_lock if ctx is None else ctx._lock

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        lock = _thread.allocate_lock()
        lock.acquire()
        proc._lock = lock

        def body() -> None:
            lock.acquire()  # wait for the first resume
            main()

        proc._thread = threading.Thread(
            target=body, name=f"simproc-{proc.rank}", daemon=True
        )
        proc._thread.start()

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        # Inlined _lock_of: this is the hottest line in the simulator.
        (self._engine_lock if dst is None else dst._lock).release()
        (self._engine_lock if src is None else src._lock).acquire()

    def exit_to(self, dst: "Proc | None") -> None:
        self._lock_of(dst).release()

    def kill(self, proc: "Proc") -> None:
        thread = proc._thread
        if thread is None or proc.finished:
            return
        if not thread.is_alive():
            # The thread never started (Thread.start() failed mid-spawn)
            # or died without reporting: there is no stack to unwind, and
            # handshaking against it would hang teardown forever.
            return
        while not proc.finished:
            proc._lock.release()
            self._engine_lock.acquire()

    def finalize(self) -> None:
        for proc in self.engine.procs:
            thread = proc._thread
            if thread is not None and thread.ident is not None:
                # ident is None for a thread whose start() failed; joining
                # it would raise rather than reap anything.
                thread.join(timeout=5.0)


class SemaphoreThreadBackend(SwitchBackend):
    """The seed engine's handoff, preserved as a reference backend.

    Every event routes through the engine thread: the yielding process
    wakes the engine via one ``threading.Semaphore``, the engine thread
    wakes the chosen process via another.  Two kernel handoffs and four
    Python-level semaphore operations per event — this is what the
    repo's engine cost looked like before the direct-handoff redesign,
    and keeping it runnable lets ``repro.bench perf`` measure the
    improvement on every host rather than asserting it in prose.
    """

    name = "thread-sem"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        self._engine_sem = threading.Semaphore(0)
        self._hand: "Proc | None" = None  # context the pump forwards to

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        sem = threading.Semaphore(0)
        proc._lock = sem  # same slot as ThreadBackend's lock

        def body() -> None:
            sem.acquire()  # wait for the first resume
            main()

        proc._thread = threading.Thread(
            target=body, name=f"simproc-{proc.rank}", daemon=True
        )
        proc._thread.start()

    def _pump(self) -> None:
        """Engine-thread loop: forward control until told to return."""
        while True:
            self._engine_sem.acquire()
            dst = self._hand
            if dst is None:
                return
            dst._lock.release()

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        if src is None:
            # Engine context: hand off to dst, then mediate every
            # subsequent switch until control is handed back.
            dst._lock.release()
            self._pump()
            return
        self._hand = dst
        self._engine_sem.release()
        src._lock.acquire()

    def exit_to(self, dst: "Proc | None") -> None:
        self._hand = dst
        self._engine_sem.release()

    def kill(self, proc: "Proc") -> None:
        thread = proc._thread
        if thread is None or proc.finished:
            return
        if not thread.is_alive():
            return  # never started: nothing to unwind (see ThreadBackend)
        while not proc.finished:
            proc._lock.release()
            self._engine_sem.acquire()  # matched by the proc's exit_to(None)

    def finalize(self) -> None:
        for proc in self.engine.procs:
            thread = proc._thread
            if thread is not None and thread.ident is not None:
                # ident is None for a thread whose start() failed; joining
                # it would raise rather than reap anything.
                thread.join(timeout=5.0)


class GreenletBackend(SwitchBackend):
    """One greenlet per process; switches never leave the OS thread.

    A greenlet switch is a user-level stack swap — no kernel, no GIL
    handoff, two orders of magnitude cheaper than waking a thread.  The
    engine context is the greenlet that called ``Engine.run()``; a
    finishing process re-parents itself onto its successor so its death
    transfers control without an extra hop.
    """

    name = "greenlet"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        if _greenlet is None:  # pragma: no cover - guarded by resolve
            raise RuntimeError("greenlet backend requires the 'greenlet' package")
        self._engine_glet = None

    def prepare(self) -> None:
        self._engine_glet = _greenlet.getcurrent()

    def _glet_of(self, ctx: "Proc | None"):
        return self._engine_glet if ctx is None else ctx._glet

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        # Parent defaults to the spawning (engine) greenlet; exit_to
        # re-parents before death so control lands on the chosen context.
        proc._glet = _greenlet(main)

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        self._glet_of(dst).switch()

    def exit_to(self, dst: "Proc | None") -> None:
        glet = _greenlet.getcurrent()
        glet.parent = self._glet_of(dst)
        # Returning from the greenlet's body transfers to the parent.

    def kill(self, proc: "Proc") -> None:
        glet = proc._glet
        if glet is None or proc.finished or glet.dead:
            return
        glet.parent = self._engine_glet
        while not proc.finished and not glet.dead:
            # Raises SimShutdown at the proc's suspended switch point
            # (or just marks a never-started greenlet dead).
            glet.throw(SimShutdown)


#: Constructible backends by CLI/env name.
BACKENDS: dict[str, type[SwitchBackend]] = {
    "thread": ThreadBackend,
    "greenlet": GreenletBackend,
    "thread-sem": SemaphoreThreadBackend,
}


def greenlet_available() -> bool:
    """Whether the optional ``greenlet`` package is importable."""
    return _greenlet is not None


def available_backends() -> tuple[str, ...]:
    """Backends usable in this environment, fastest first."""
    names = ["greenlet"] if _greenlet is not None else []
    names += ["thread", "thread-sem"]
    return tuple(names)


def resolve_backend_name(name: str | None = "auto") -> str:
    """Resolve a backend request to a concrete backend name.

    ``"auto"`` (or None/empty) consults ``$REPRO_SIM_BACKEND``; if that
    is unset or itself ``auto``, picks ``greenlet`` when importable and
    ``thread`` otherwise.  Explicit names are validated: asking for
    ``greenlet`` without the package installed raises instead of
    silently falling back, so benchmark results can't lie about the
    backend they ran on.
    """
    name = name or "auto"
    if name == "auto":
        name = os.environ.get(ENV_BACKEND, "").strip() or "auto"
    if name == "auto":
        return "greenlet" if _greenlet is not None else "thread"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {name!r}; choose from "
            f"{sorted(BACKENDS)} or 'auto'"
        )
    if name == "greenlet" and _greenlet is None:
        raise RuntimeError(
            "backend 'greenlet' requested (argument or $REPRO_SIM_BACKEND) "
            "but the optional 'greenlet' package is not importable; "
            "install it or use backend 'thread'"
        )
    return name


def make_backend(name: str, engine: "Engine") -> SwitchBackend:
    """Instantiate the backend resolved from ``name`` for ``engine``."""
    return BACKENDS[resolve_backend_name(name)](engine)
