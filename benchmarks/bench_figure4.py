"""Figure 4: termination detection vs ARMCI/MPI barrier timings."""

from repro.bench.figure4 import run_figure4
from repro.bench.harness import scale
from repro.bench.report import render


def test_figure4(benchmark):
    result = benchmark.pedantic(run_figure4, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, fmt="{:.1f}"))
    td = result.get("scioto-termination")
    armci = result.get("armci-barrier")
    mpi = result.get("mpi-barrier")
    big = max(td.xs)
    # ordering: termination > ARMCI barrier > MPI barrier, same order of
    # magnitude (paper: ~2x; we allow up to 8x), all growing ~log(p)
    for p in td.xs:
        if p == 1:
            continue
        assert mpi.y_at(p) < armci.y_at(p) < td.y_at(p)
        assert td.y_at(p) < 8 * armci.y_at(p), (p, td.y_at(p), armci.y_at(p))
    assert td.y_at(big) > td.y_at(2)
    assert td.y_at(big) < td.y_at(2) * big  # sublinear growth in p
