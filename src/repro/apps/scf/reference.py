"""Sequential SCF reference: plain NumPy, no simulator.

Runs the exact arithmetic of the parallel versions (same block kernels
from :class:`SCFProblem`), so parallel energies must match these to
machine precision — the correctness oracle for both schedulers.
"""

from __future__ import annotations

import numpy as np

from repro.apps.scf.problem import SCFProblem

__all__ = ["run_scf_sequential", "build_fock_sequential"]


def build_fock_sequential(problem: SCFProblem, density: np.ndarray) -> np.ndarray:
    """Assemble the full Fock matrix block by block."""
    nbf = problem.nbf
    fock = np.zeros((nbf, nbf))
    for i in range(problem.nblocks):
        si = problem.block_slice(i)
        for j in range(problem.nblocks):
            sj = problem.block_slice(j)
            if not problem.significant(i, j):
                # screened pairs contribute only the core Hamiltonian
                fock[si, sj] = problem.core_hamiltonian()[si, sj]
                continue
            fock[si, sj] = problem.fock_block(i, j, density[si, sj], density[sj, si])
    return fock


def run_scf_sequential(
    problem: SCFProblem, iterations: int = 4, convergence: float | None = None
) -> list[float]:
    """Run up to ``iterations`` SCF cycles; returns the energy after each.

    With ``convergence`` set, stops once ``|E_n - E_{n-1}| < convergence``
    — the same criterion the parallel drivers apply, so energy
    trajectories (including their length) stay schedule-invariant.
    """
    density = problem.initial_density()
    energies: list[float] = []
    for _ in range(iterations):
        fock = build_fock_sequential(problem, density)
        energies.append(problem.energy(fock, density))
        if (
            convergence is not None
            and len(energies) >= 2
            and abs(energies[-1] - energies[-2]) < convergence
        ):
            break
        density = problem.next_density(fock, density)
    return energies
