"""Tests for timed parking (park_until) and mailbox waiting."""

from __future__ import annotations

import pytest

from repro.armci.runtime import Armci
from repro.sim.engine import Engine, run_spmd


class TestParkUntil:
    def test_timeout_resume(self):
        def main(proc):
            payload = proc.park_until(proc.now + 5e-6, "nap")
            return (payload, proc.now)

        res = run_spmd(1, main)
        payload, t = res.returns[0]
        assert payload is None
        assert t == pytest.approx(5e-6)

    def test_early_wake_wins(self):
        def main(proc):
            if proc.rank == 0:
                payload = proc.park_until(proc.now + 100e-6, "nap")
                return (payload, proc.now)
            proc.advance(3e-6)
            proc.sync()
            proc.engine.wake(proc.engine.procs[0], proc.now, payload="ping")
            return None

        res = run_spmd(2, main)
        payload, t = res.returns[0]
        assert payload == "ping"
        assert t == pytest.approx(3e-6)

    def test_stale_timeout_entry_skipped_after_wake(self):
        """After an early wake, the old timeout must not re-resume the proc."""
        resumes = []

        def main(proc):
            if proc.rank == 0:
                proc.park_until(proc.now + 10e-6, "nap")
                resumes.append(proc.now)
                # sleep past the stale timeout; nothing should fire
                proc.sleep(50e-6)
                resumes.append(proc.now)
                return None
            proc.advance(2e-6)
            proc.sync()
            proc.engine.wake(proc.engine.procs[0], proc.now)
            return None

        run_spmd(2, main)
        assert resumes[0] == pytest.approx(2e-6)
        assert resumes[1] == pytest.approx(52e-6)

    def test_repeated_timed_parks(self):
        def main(proc):
            for _ in range(5):
                proc.park_until(proc.now + 1e-6, "tick")
            return proc.now

        res = run_spmd(1, main)
        assert res.returns[0] == pytest.approx(5e-6)


class TestWaitMailbox:
    def test_wakes_on_post(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                got = armci.wait_mailbox(proc, "t", timeout=1.0)
                msg = armci.poll_mailbox(proc, "t")
                return (got, msg, proc.now)
            proc.advance(7e-6)
            proc.sync()
            armci.post(proc, 0, "t", "hello")
            return None

        eng = Engine(2, max_events=100_000)
        eng.spawn_all(main)
        res = eng.run()
        got, msg, t = res.returns[0]
        assert got is True
        assert msg[1] == "hello"
        assert t < 50e-6  # woke on arrival, not at the 1s timeout

    def test_timeout_without_message(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            got = armci.wait_mailbox(proc, "t", timeout=4e-6)
            return (got, proc.now)

        res = run_spmd(1, main)
        got, t = res.returns[0]
        assert got is False
        assert t >= 4e-6

    def test_immediate_when_message_pending(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 1:
                armci.post(proc, 0, "t", 1)
                return None
            proc.sleep(20e-6)
            t0 = proc.now
            got = armci.wait_mailbox(proc, "t", timeout=1.0)
            return (got, proc.now - t0)

        eng = Engine(2, max_events=100_000)
        eng.spawn_all(main)
        res = eng.run()
        got, dt = res.returns[0]
        assert got is True
        assert dt < 1e-6
