"""Self-profiler: stack attribution, sampling, and wall-JSON persistence."""

from __future__ import annotations

import json
import time
from types import SimpleNamespace

import pytest

from repro.bench.perf import write_wall_json
from repro.bench.selfprof import (
    SUBSYSTEMS,
    SubsystemProfiler,
    attribute_stack,
    render_attribution,
)


def fake_frame(*filenames):
    """Innermost-first chain of frames with the given co_filename values."""
    frame = None
    for fn in reversed(filenames):
        frame = SimpleNamespace(f_code=SimpleNamespace(co_filename=fn), f_back=frame)
    return frame


class TestAttribution:
    def test_innermost_repro_frame_wins(self):
        f = fake_frame(
            "/x/src/repro/core/queue.py",
            "/x/src/repro/sim/engine.py",
        )
        assert attribute_stack(f) == "queue"

    def test_stdlib_frames_charge_the_calling_subsystem(self):
        f = fake_frame(
            "/usr/lib/python3/bisect.py",
            "/x/src/repro/core/stealing.py",
        )
        assert attribute_stack(f) == "steal"

    def test_heapq_innermost_is_the_heap_bucket(self):
        f = fake_frame(
            "/usr/lib/python3/heapq.py",
            "/x/src/repro/sim/engine.py",
        )
        assert attribute_stack(f) == "heap"

    def test_heapq_deeper_in_the_stack_does_not_claim(self):
        f = fake_frame(
            "/x/src/repro/sim/engine.py",
            "/usr/lib/python3/heapq.py",
        )
        assert attribute_stack(f) == "engine"

    def test_unmatched_repro_frame_lands_in_runtime_other(self):
        assert attribute_stack(fake_frame("/x/src/repro/newthing.py")) == "runtime-other"

    def test_no_repro_frame_is_other(self):
        assert attribute_stack(fake_frame("/usr/lib/python3/threading.py")) == "other"

    def test_every_named_runtime_module_maps(self):
        for name, fragments in SUBSYSTEMS:
            for frag in fragments:
                assert attribute_stack(fake_frame(f"/x/src/{frag}x.py")) == name


class TestProfiler:
    def test_sampling_attributes_a_real_workload(self):
        from repro.obs.scenarios import run_target

        prof = SubsystemProfiler(interval=0.0005).start()
        deadline = time.perf_counter() + 0.3
        while time.perf_counter() < deadline:
            run_target("queue", record=False)
        table = prof.stop()
        assert table["samples"] > 0
        assert sum(table["fractions"].values()) == pytest.approx(1.0)
        # Everything in that loop is repro code; "other" may appear only
        # via interpreter housekeeping and must not dominate.
        assert table["named"] >= 0.9

    def test_stop_without_samples(self):
        table = SubsystemProfiler(interval=10.0).start()
        result = table.stop()
        assert result == {"samples": 0, "fractions": {}, "named": 0}
        assert "(no samples)" in render_attribution(result)

    def test_render_lists_fractions_and_total(self):
        prof = SubsystemProfiler()
        prof.counts.update({"engine": 3, "queue": 1})
        text = render_attribution(prof.table())
        assert "engine" in text and "75.0%" in text
        assert "of 4 samples" in text


class TestWallJsonNotes:
    def test_profile_entries_are_lifted_into_notes(self, tmp_path):
        path = tmp_path / "wall.json"
        entries = [{
            "scenario": "uts-small", "backend": "coro", "events": 1,
            "best_wall_s": 0.1, "events_per_sec": 10.0,
            "profile": {"samples": 4, "fractions": {"engine": 1.0}, "named": 1.0},
        }]
        write_wall_json(entries, path)
        doc = json.loads(path.read_text())
        assert "profile" not in doc["entries"][0]
        assert doc["notes"]["profile"]["uts-small/coro"]["named"] == 1.0

    def test_baselines_and_notes_survive_regeneration(self, tmp_path):
        path = tmp_path / "wall.json"
        entry = {"scenario": "queue", "backend": "coro", "events": 1,
                 "best_wall_s": 0.1, "events_per_sec": 10.0}
        baseline = {**entry, "backend": "reference"}
        write_wall_json([entry], path,
                        baselines=[baseline],
                        notes={"profile": {"queue/coro": {"named": 1.0}}})
        write_wall_json([entry], path)  # regeneration without either
        doc = json.loads(path.read_text())
        assert doc["baselines"] == [baseline]
        assert doc["notes"]["profile"]["queue/coro"]["named"] == 1.0
