"""Tests for non-blocking one-sided ops and strided transfer costs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci.runtime import Armci
from repro.ga import GlobalArray
from repro.sim.engine import Engine


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=1_000_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestNonBlocking:
    def test_nbget_value_after_wait(self):
        store = {"x": 123}

        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                h = armci.nbget(proc, 1, 64, lambda: store["x"])
                return armci.wait(proc, h)
            return None

        _, res = _run(2, main)
        assert res.returns[0] == 123

    def test_overlap_beats_sequential(self):
        """N concurrent gets from distinct owners cost ~max, not ~sum."""
        nbytes = 64 * 1024

        def sequential(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank != 0:
                return None
            t0 = proc.now
            for target in (1, 2, 3):
                armci.get(proc, target, nbytes, lambda: None)
            return proc.now - t0

        def overlapped(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank != 0:
                return None
            t0 = proc.now
            handles = [armci.nbget(proc, t, nbytes, lambda: None) for t in (1, 2, 3)]
            armci.wait_all(proc, handles)
            return proc.now - t0

        _, seq = _run(4, sequential)
        _, ovl = _run(4, overlapped)
        assert ovl.returns[0] < 0.6 * seq.returns[0]

    def test_wait_is_idempotent_in_time(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank != 0:
                return None
            h = armci.nbput(proc, 1, 1024, None)
            armci.wait(proc, h)
            t1 = proc.now
            armci.wait(proc, h)  # already complete: no extra time
            return proc.now - t1

        _, res = _run(2, main)
        assert res.returns[0] == 0.0

    def test_nbput_applies_mutation(self):
        box = {}

        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                h = armci.nbput(proc, 1, 64, lambda: box.__setitem__("v", 9))
                armci.wait(proc, h)
            armci.barrier(proc)
            return box.get("v")

        _, res = _run(2, main)
        assert res.returns == [9, 9]

    def test_local_nb_ops_complete_immediately(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            h = armci.nbget(proc, proc.rank, 4096, lambda: 5)
            t_before = proc.now
            v = armci.wait(proc, h)
            return (v, proc.now - t_before)

        _, res = _run(1, main)
        assert res.returns[0] == (5, 0.0)


class TestStridedCosts:
    def test_more_chunks_cost_more(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank != 0:
                return None
            t0 = proc.now
            armci.wait(proc, armci.nbget(proc, 1, 8192, None, nchunks=1))
            contiguous = proc.now - t0
            t0 = proc.now
            armci.wait(proc, armci.nbget(proc, 1, 8192, None, nchunks=64))
            strided = proc.now - t0
            return (contiguous, strided)

        _, res = _run(2, main)
        contiguous, strided = res.returns[0]
        m = Engine(2).machine
        assert strided == pytest.approx(contiguous + 63 * m.stride_chunk_overhead)

    def test_ga_row_get_cheaper_than_column_get(self):
        """A row of a 2D patch is contiguous; a column is fully strided."""

        def main(proc):
            ga = GlobalArray.create(proc, "m", (64, 64))
            ga.sync(proc)
            other = (proc.rank + 1) % proc.nprocs
            lo, hi = ga.distribution(other)
            if proc.rank != 0:
                return None
            t0 = proc.now
            ga.get(proc, (lo[0], lo[1]), (lo[0] + 1, hi[1]))  # one row
            row = proc.now - t0
            t0 = proc.now
            ga.get(proc, (lo[0], lo[1]), (hi[0], lo[1] + 1))  # one column
            col = proc.now - t0
            return (row, col)

        _, res = _run(2, main)
        row, col = res.returns[0]
        assert col > row
