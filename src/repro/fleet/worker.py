"""Fleet worker process: the loop that runs on the far side of the pipe.

Workers are deliberately dumb: they hold no queue and make no
scheduling decisions.  The parent owns every deque and sends exactly
one job at a time; the worker executes it and sends back one
:class:`~repro.fleet.jobs.JobResult`.  All the work-stealing policy
(split deques, steal-half, neighbor-first victims, quiescence waves)
stays in the single-threaded scheduler parent, where it is
deterministic and testable — the process boundary carries only
(job, result) pairs.

``worker_main`` must stay a module-level function: forkserver/spawn
children locate it by qualified name.  The parent signals shutdown by
sending ``None``; a vanished parent (``EOFError``) also terminates the
loop, so orphaned workers exit instead of idling forever.
"""

from __future__ import annotations

from multiprocessing.connection import Connection

from repro.fleet.jobs import Job, execute_job

__all__ = ["worker_main"]


def worker_main(conn: Connection, worker_id: int) -> None:
    """Serve (job -> result) requests over ``conn`` until shutdown."""
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            assert isinstance(msg, Job), f"worker got non-job message {msg!r}"
            result = execute_job(msg, worker=worker_id)
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()
