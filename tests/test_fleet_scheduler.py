"""Unit and policy tests for the fleet meta-scheduler.

Everything here runs on the :class:`~repro.fleet.pool.InlinePool` (or
no pool at all), so the split-deque policy, neighbor-first stealing,
and wave-based quiescence are exercised deterministically.  The
process-boundary failure paths live in ``test_fleet_failures.py``.
"""

from __future__ import annotations

import pytest

from repro.fleet.jobs import Job, bench_jobs, execute_job, explore_jobs, mutation_jobs
from repro.fleet.scheduler import FleetReport, FleetScheduler, QuiescenceDetector
from repro.fleet.wsqueue import WorkerDeque, neighbor_order


def probe_jobs(n, action="ok"):
    return [
        Job(kind="probe", key=f"probe/{i}", params={"action": action})
        for i in range(n)
    ]


class TestNeighborOrder:
    def test_ring_distance_increases_right_first(self):
        # Thief 0 of 5: distance 1 right, 1 left, 2 right, 2 left.
        assert neighbor_order(0, 5) == [1, 4, 2, 3]

    def test_middle_worker(self):
        assert neighbor_order(2, 5) == [3, 1, 4, 0]

    def test_covers_everyone_once(self):
        for n in (2, 3, 4, 7, 8):
            for w in range(n):
                order = neighbor_order(w, n)
                assert sorted(order) == [x for x in range(n) if x != w]

    def test_single_worker_has_no_victims(self):
        assert neighbor_order(0, 1) == []


class TestWorkerDeque:
    def test_fifo_within_private(self):
        d = WorkerDeque(0, release_threshold=4)
        jobs = probe_jobs(3)
        d.push_all(jobs)
        assert [d.pop() for _ in range(3)] == jobs
        assert d.pop() is None

    def test_release_spills_surplus_to_shared(self):
        d = WorkerDeque(0, release_threshold=2)
        d.push_all(probe_jobs(5))
        assert d.private_size() == 2
        assert d.shared_size() == 3
        assert d.release_ops == 1

    def test_reacquire_reclaims_half_when_private_drains(self):
        d = WorkerDeque(0, release_threshold=1)
        d.push_all(probe_jobs(5))  # private=1, shared=4
        d.pop()  # drains private
        assert d.pop() is not None  # triggered reacquire of 2
        assert d.reacquire_ops == 1
        assert d.shared_size() == 2

    def test_steal_half_takes_ceil_from_shared_tail(self):
        d = WorkerDeque(0, release_threshold=1)
        jobs = probe_jobs(6)
        d.push_all(jobs)  # private=1, shared=5
        chunk = d.steal_half()
        assert len(chunk) == 3  # ceil(5/2)
        assert chunk == jobs[3:]  # the tail: owner's last-reached jobs
        assert d.steals_suffered == 1
        assert d.jobs_stolen_away == 3

    def test_steal_never_touches_private(self):
        d = WorkerDeque(0, release_threshold=3)
        d.push_all(probe_jobs(3))  # all private
        assert d.steal_half() == []
        assert d.size() == 3

    def test_steal_empty_is_noop(self):
        d = WorkerDeque(0)
        assert d.steal_half() == []
        assert d.steals_suffered == 0

    def test_release_threshold_validated(self):
        with pytest.raises(ValueError, match="release_threshold"):
            WorkerDeque(0, release_threshold=0)


class TestQuiescenceDetector:
    def _empty_deques(self, n):
        return [WorkerDeque(w) for w in range(n)]

    def test_clean_fleet_quiesces_on_first_wave(self):
        det = QuiescenceDetector(4)
        assert det.wave(self._empty_deques(4), in_flight=0)
        assert det.waves == 1

    def test_dirty_worker_blackens_the_wave(self):
        det = QuiescenceDetector(4)
        det.mark_dirty(3)  # a leaf; its token must fold up to the root
        assert not det.wave(self._empty_deques(4), in_flight=0)
        # Voting cleared the dirty flag, so the next wave is white.
        assert det.wave(self._empty_deques(4), in_flight=0)
        assert det.waves == 2

    def test_in_flight_work_blackens_the_wave(self):
        det = QuiescenceDetector(2)
        assert not det.wave(self._empty_deques(2), in_flight=1)

    def test_nonempty_deque_blackens_the_wave(self):
        det = QuiescenceDetector(2)
        deques = self._empty_deques(2)
        deques[1].push(probe_jobs(1)[0])
        assert not det.wave(deques, in_flight=0)

    def test_done_latches(self):
        det = QuiescenceDetector(2)
        assert det.wave(self._empty_deques(2), in_flight=0)
        det.mark_dirty(0)
        assert det.wave(self._empty_deques(2), in_flight=0)  # still done
        assert det.waves == 1  # latched: no further waves run


class TestJobBuilders:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            Job(kind="nonsense", key="x")

    def test_explore_jobs_cover_all_indices_contiguously(self):
        jobs = explore_jobs(["queue"], 10, batch=3)
        indices = [i for j in jobs for i in j.params["indices"]]
        assert indices == list(range(10))
        assert [j.key for j in jobs] == [
            "explore/queue/random/0-2",
            "explore/queue/random/3-5",
            "explore/queue/random/6-8",
            "explore/queue/random/9-9",
        ]

    def test_explore_default_batch_targets_four_jobs_per_worker(self):
        jobs = explore_jobs(["queue"], 80, nworkers=2)
        assert len(jobs) == 8
        assert all(len(j.params["indices"]) == 10 for j in jobs)

    def test_bench_and_mutation_keys(self):
        assert [j.key for j in bench_jobs(["table1"], "quick")] == ["bench/table1"]
        jobs = mutation_jobs([("queue", "unlocked_split")], schedules=5)
        assert jobs[0].key == "mutation/queue/unlocked_split"

    def test_job_error_is_captured_not_raised(self):
        res = execute_job(
            Job(kind="probe", key="p", params={"action": "raise", "message": "boom"})
        )
        assert not res.ok
        assert "boom" in res.error


class TestInlineScheduler:
    def test_empty_campaign_quiesces_in_one_wave(self):
        report = FleetScheduler(3, inline=True).run([])
        assert report.ok
        assert report.completed == []
        assert report.waves == 1
        assert report.accounted() == 0

    def test_all_jobs_complete_and_are_accounted(self):
        report = FleetScheduler(3, inline=True).run(probe_jobs(10))
        assert report.ok
        assert len(report.completed) == 10
        assert report.accounted() == report.jobs_total == 10
        assert report.waves >= 1
        assert report.metrics.counters.total("jobs_done") == 10

    def test_more_workers_than_jobs(self):
        report = FleetScheduler(6, inline=True).run(probe_jobs(2))
        assert report.ok
        assert len(report.completed) == 2

    def test_duplicate_keys_rejected(self):
        jobs = probe_jobs(2)
        jobs[1].key = jobs[0].key
        with pytest.raises(ValueError, match="unique"):
            FleetScheduler(2, inline=True).run(jobs)

    def test_job_level_error_flags_report_not_ok(self):
        jobs = probe_jobs(3) + [
            Job(kind="probe", key="probe/bad", params={"action": "raise"})
        ]
        report = FleetScheduler(2, inline=True).run(jobs)
        assert not report.ok
        assert len(report.failed_results) == 1
        assert report.failed_results[0].key == "probe/bad"
        # An erroring job is still *completed* — never dropped.
        assert report.accounted() == 4

    def test_nworkers_validated(self):
        with pytest.raises(ValueError, match="nworkers"):
            FleetScheduler(0)


class TestStealPolicy:
    """Drive FleetScheduler._acquire directly against hand-built deques."""

    def _setup(self, nworkers):
        sched = FleetScheduler(nworkers, inline=True)
        deques = [WorkerDeque(w, release_threshold=1) for w in range(nworkers)]
        det = QuiescenceDetector(nworkers)
        report = FleetReport(nworkers=nworkers, jobs_total=0)
        return sched, deques, det, report

    def test_own_deque_preferred_over_stealing(self):
        sched, deques, det, report = self._setup(2)
        mine = probe_jobs(2)
        deques[0].push_all(mine)
        deques[1].push_all(probe_jobs(4))
        job = sched._acquire(0, deques, det, report.metrics, report)
        assert job is mine[0]
        assert report.steals == 0

    def test_steal_half_from_nearest_victim(self):
        sched, deques, det, report = self._setup(3)
        deques[1].push_all(probe_jobs(5))  # private=1, shared=4
        job = sched._acquire(0, deques, det, report.metrics, report)
        assert job is not None
        assert report.steals == 1
        assert report.jobs_stolen == 2  # ceil(4/2)
        # The steal dirties both the victim and the thief.
        assert det.dirty[1] and det.dirty[0]
        # Stolen surplus (beyond the thief's own pop) stays with the thief.
        assert deques[0].size() == 1

    def test_neighbor_first_victim_order(self):
        sched, deques, det, report = self._setup(4)
        # Worker 1 (distance 1 from thief 0) and worker 2 (distance 2)
        # both have stealable work; the nearer one must be hit.
        far, near = probe_jobs(4), [
            Job(kind="probe", key=f"near/{i}") for i in range(4)
        ]
        deques[2].push_all(far)
        deques[1].push_all(near)
        job = sched._acquire(0, deques, det, report.metrics, report)
        assert job.key.startswith("near/")
        assert deques[2].steals_suffered == 0

    def test_no_victim_returns_none(self):
        sched, deques, det, report = self._setup(3)
        deques[1].push(probe_jobs(1)[0])  # private only: not stealable
        assert sched._acquire(0, deques, det, report.metrics, report) is None
        assert report.steals == 0
