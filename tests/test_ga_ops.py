"""Tests for the whole-array GA operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ga import (
    GlobalArray,
    ga_add,
    ga_copy,
    ga_dgop,
    ga_dot,
    ga_scale,
    ga_symmetrize,
)
from repro.sim.engine import Engine
from repro.util.errors import CommError


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=1_000_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


def _fill(proc, ga, full):
    lo, hi = ga.distribution(proc.rank)
    sl = tuple(slice(a, b) for a, b in zip(lo, hi))
    ga.access(proc)[...] = full[sl]
    ga.sync(proc)


def test_ga_dgop_sum_and_max():
    def main(proc):
        s = ga_dgop(proc, float(proc.rank + 1), lambda a, b: a + b)
        m = ga_dgop(proc, float(proc.rank), max)
        return (s, m)

    _, res = _run(4, main)
    assert res.returns == [(10.0, 3.0)] * 4


def test_ga_add():
    full_a = np.arange(36.0).reshape(6, 6)
    full_b = np.ones((6, 6))

    def main(proc):
        a = GlobalArray.create(proc, "a", (6, 6))
        b = GlobalArray.create(proc, "b", (6, 6))
        c = GlobalArray.create(proc, "c", (6, 6))
        _fill(proc, a, full_a)
        _fill(proc, b, full_b)
        ga_add(proc, 2.0, a, -1.0, b, c)
        return c.read_full(proc)

    _, res = _run(4, main)
    assert np.allclose(res.returns[0], 2 * full_a - full_b)


def test_ga_scale_and_copy():
    full = np.arange(16.0).reshape(4, 4)

    def main(proc):
        a = GlobalArray.create(proc, "a", (4, 4))
        b = GlobalArray.create(proc, "b", (4, 4))
        _fill(proc, a, full)
        ga_scale(proc, a, 3.0)
        ga_copy(proc, a, b)
        return b.read_full(proc)

    _, res = _run(2, main)
    assert np.allclose(res.returns[1], 3 * full)


def test_ga_dot_matches_numpy():
    rng = np.random.default_rng(2)
    full_a = rng.standard_normal((8, 8))
    full_b = rng.standard_normal((8, 8))

    def main(proc):
        a = GlobalArray.create(proc, "a", (8, 8))
        b = GlobalArray.create(proc, "b", (8, 8))
        _fill(proc, a, full_a)
        _fill(proc, b, full_b)
        return ga_dot(proc, a, b)

    _, res = _run(4, main)
    expect = float(np.sum(full_a * full_b))
    for v in res.returns:
        assert v == pytest.approx(expect)


def test_ga_symmetrize():
    rng = np.random.default_rng(3)
    full = rng.standard_normal((9, 9))

    def main(proc):
        a = GlobalArray.create(proc, "a", (9, 9))
        _fill(proc, a, full)
        ga_symmetrize(proc, a)
        return a.read_full(proc)

    _, res = _run(4, main)
    assert np.allclose(res.returns[0], (full + full.T) / 2)
    assert np.allclose(res.returns[0], res.returns[0].T)


def test_ga_symmetrize_requires_square():
    def main(proc):
        a = GlobalArray.create(proc, "a", (4, 6))
        ga_symmetrize(proc, a)

    with pytest.raises(CommError, match="square"):
        _run(2, main)


def test_conformance_checked():
    def main(proc):
        a = GlobalArray.create(proc, "a", (4, 4))
        b = GlobalArray.create(proc, "b", (5, 5))
        ga_copy(proc, a, b)

    with pytest.raises(CommError, match="conformant"):
        _run(2, main)
