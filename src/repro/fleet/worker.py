"""Fleet worker process: the loop that runs on the far side of the pipe.

Workers are deliberately dumb: they hold no queue and make no
scheduling decisions.  The parent owns every deque and sends exactly
one job at a time; the worker executes it and sends back one
:class:`~repro.fleet.jobs.JobResult`.  All the work-stealing policy
(split deques, steal-half, neighbor-first victims, quiescence waves)
stays in the single-threaded scheduler parent, where it is
deterministic and testable — the process boundary carries only
(job, result) pairs.

When the pool was built with a ``flight_dir``, each worker arms the
crash flight recorder before serving jobs: it exports
``REPRO_FLIGHT_DIR`` so every engine run inside a job attaches a
periodically flushed :class:`~repro.obs.flight.FlightRecorder`, and it
drops a *breadcrumb* file (``worker-<id>-current.json``) before and
after each job.  A SIGKILL'd worker gets no chance to report back, so
the breadcrumb — last rewritten with ``status: "running"`` — plus the
flight recorder's periodic dump are the only forensics; the scheduler
parent folds both into its crash report (:mod:`repro.fleet.scheduler`).

``worker_main`` must stay a module-level function: forkserver/spawn
children locate it by qualified name.  The parent signals shutdown by
sending ``None``; a vanished parent (``EOFError``) also terminates the
loop, so orphaned workers exit instead of idling forever.
"""

from __future__ import annotations

import json
import os
import time
from multiprocessing.connection import Connection
from pathlib import Path

from repro.fleet.jobs import Job, execute_job

__all__ = ["worker_main", "breadcrumb_path"]

#: Periodic-flush cadence for worker-side flight recorders: rewrite the
#: dump every this-many recorded spans/instants, so even a SIGKILL'd
#: worker leaves a recent ring snapshot on disk.
_FLIGHT_FLUSH_EVERY = 512


def breadcrumb_path(flight_dir: str | Path, worker_id: int) -> Path:
    """Where worker ``worker_id`` keeps its current-job breadcrumb."""
    return Path(flight_dir) / f"worker-{worker_id}-current.json"


def _drop_breadcrumb(
    path: Path, worker_id: int, job: Job, status: str, error: str | None = None
) -> None:
    # Lazy import: the breadcrumb writer must not drag the obs stack
    # into the forkserver preload path.
    from repro.util.io import atomic_write_text

    doc = {
        "worker": worker_id,
        "pid": os.getpid(),
        "job_key": job.key,
        "job_kind": job.kind,
        "attempt": job.attempts,
        "status": status,  # "running" | "done" | "failed"
        "error": error,
        "wall_clock": time.time(),  # repro: lint-disable=RPR002
    }
    try:
        atomic_write_text(path, json.dumps(doc, indent=2))
    except OSError:  # pragma: no cover - breadcrumbs are best-effort
        pass


def worker_main(
    conn: Connection, worker_id: int, flight_dir: str | None = None
) -> None:
    """Serve (job -> result) requests over ``conn`` until shutdown."""
    crumb: Path | None = None
    if flight_dir is not None:
        # Arm the flight recorder for every engine run this worker
        # executes (repro.obs.flight.maybe_attach_flight reads this),
        # with periodic flushing so SIGKILL leaves evidence behind.
        os.environ["REPRO_FLIGHT_DIR"] = str(flight_dir)
        os.environ.setdefault(
            "REPRO_FLIGHT_FLUSH_EVERY", str(_FLIGHT_FLUSH_EVERY)
        )
        Path(flight_dir).mkdir(parents=True, exist_ok=True)
        crumb = breadcrumb_path(flight_dir, worker_id)
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            assert isinstance(msg, Job), f"worker got non-job message {msg!r}"
            if crumb is not None:
                _drop_breadcrumb(crumb, worker_id, msg, "running")
            result = execute_job(msg, worker=worker_id)
            if crumb is not None:
                _drop_breadcrumb(
                    crumb,
                    worker_id,
                    msg,
                    "done" if result.ok else "failed",
                    error=result.error,
                )
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()
