"""Smoke tests: every shipped example must run green end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script), "4"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in _EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "paper reproduction ships at least three examples"
