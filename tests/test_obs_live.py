"""Live telemetry bus: feed determinism, merging, rendering, fleet wiring.

The bus is an observer: two identical runs produce byte-identical feeds
and attaching it never changes the run fingerprint (the cross-backend
half of that contract lives in ``repro.obs verify``).  These tests also
cover the feed reader's torn-line tolerance, the schema validator, the
parent-side fleet merge, and the flight recorder's latest-frame capture.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.flight import FlightRecorder, load_flight_dump
from repro.obs.live import (
    LIVE_SCHEMA,
    TelemetryBus,
    latest_frames,
    merge_feeds,
    read_feed,
    render_top,
    validate_feed,
)
from repro.obs.scenarios import fingerprint, run_target


def run_with_feed(tmp_path, target="queue", name="feed.jsonl", **kw):
    path = tmp_path / name
    run = run_target(target, record=True, live_path=path, live_interval=50e-6, **kw)
    return run, path


class TestFeedDeterminism:
    def test_two_runs_produce_byte_identical_feeds(self, tmp_path):
        _, a = run_with_feed(tmp_path, name="a.jsonl")
        _, b = run_with_feed(tmp_path, name="b.jsonl")
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes()  # and the feed is non-empty

    def test_bus_does_not_perturb_the_run(self, tmp_path):
        base = fingerprint(run_target("queue", record=True))
        lived, _ = run_with_feed(tmp_path)
        assert fingerprint(lived) == base

    def test_feed_validates_clean(self, tmp_path):
        _, path = run_with_feed(tmp_path)
        doc = read_feed(path)
        assert doc["meta"]["schema"] == LIVE_SCHEMA
        assert doc["frames"]
        assert validate_feed(doc) == []

    def test_frames_cover_disjoint_increasing_windows(self, tmp_path):
        _, path = run_with_feed(tmp_path)
        frames = read_feed(path)["frames"]
        for prev, cur in zip(frames, frames[1:]):
            assert prev["t1"] <= cur["t0"]
            assert prev["seq"] < cur["seq"]

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryBus(tmp_path / "f.jsonl", interval=0.0)


class TestFeedReader:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        _, path = run_with_feed(tmp_path)
        whole = read_feed(path)
        with path.open("a") as fh:
            fh.write('{"kind": "frame", "label": "torn", "t0"')
        assert len(read_feed(path)["frames"]) == len(whole["frames"])

    def test_missing_meta_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "frame", "t0": 0}\n')
        with pytest.raises(ValueError, match="no meta line"):
            read_feed(p)

    def test_wrong_schema_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "meta", "schema": "other/9"}\n')
        with pytest.raises(ValueError, match="unsupported"):
            read_feed(p)

    def test_validate_flags_structural_problems(self):
        doc = {
            "meta": {"schema": LIVE_SCHEMA, "interval": 0},
            "frames": [{"label": "x", "seq": 0, "t0": 1.0, "t1": 1.0,
                        "events": 5, "d_events": 5,
                        "histograms": {"h": {"count": 1}}}],
        }
        problems = validate_feed(doc)
        assert any("interval" in p for p in problems)
        assert any("empty window" in p for p in problems)
        assert any("missing 'p50'" in p for p in problems)


class TestMergeAndRender:
    def test_merge_annotates_workers_and_orders_by_time(self, tmp_path):
        _, a = run_with_feed(tmp_path, target="queue", name="a.jsonl")
        _, b = run_with_feed(tmp_path, target="steals", name="b.jsonl")
        out = tmp_path / "merged.jsonl"
        merged = merge_feeds([(0, a), (1, b)], out)
        assert validate_feed(merged) == []
        workers = {f["worker"] for f in merged["frames"]}
        assert workers == {0, 1}
        t1s = [f["t1"] for f in merged["frames"]]
        assert t1s == sorted(t1s)
        # The merged file re-reads identically.
        again = read_feed(out)
        assert again["frames"] == merged["frames"]

    def test_latest_frames_picks_one_per_stream(self, tmp_path):
        _, a = run_with_feed(tmp_path, target="queue", name="a.jsonl")
        _, b = run_with_feed(tmp_path, target="steals", name="b.jsonl")
        merged = merge_feeds([(0, a), (1, b)], tmp_path / "m.jsonl")
        latest = latest_frames(merged)
        assert len(latest) == 2
        for f in latest:
            same = [g for g in merged["frames"]
                    if g["label"] == f["label"] and g["worker"] == f["worker"]]
            assert f["seq"] == max(g["seq"] for g in same)

    def test_render_top_mentions_streams_and_metrics(self, tmp_path):
        _, path = run_with_feed(tmp_path, target="steals")
        text = render_top(read_feed(path))
        assert "steals" in text
        assert "p99" in text
        assert "events=" in text

    def test_render_top_empty_feed(self):
        assert "no frames" in render_top({"meta": {}, "frames": []})


class TestFlightIntegration:
    def test_flight_dump_carries_latest_frame_and_config(self, tmp_path):
        flight = FlightRecorder(tmp_path / "flight.json", per_rank=8)
        run = run_target(
            "queue", record=True, live_path=tmp_path / "f.jsonl",
            live_interval=50e-6, flight=flight,
        )
        assert run.recorder.live.frames_emitted > 0
        flight.dump("test")
        doc = load_flight_dump(tmp_path / "flight.json")
        assert doc["telemetry"]["kind"] == "frame"
        assert doc["telemetry"]["seq"] == run.recorder.live.frames_emitted - 1
        assert doc["config"]["per_rank"] == 8


class TestFleetWiring:
    def test_obs_job_publishes_feed_and_parent_merge_matches(self, tmp_path):
        from repro.fleet.jobs import execute_job, obs_jobs

        jobs = obs_jobs(["queue", "steals"], str(tmp_path), live=True,
                        live_interval=50e-6)
        feeds = []
        for i, job in enumerate(jobs):
            result = execute_job(job, worker=i)
            assert result.ok, result.error
            assert result.payload["live_path"]
            feeds.append((i, result.payload["live_path"]))
        merged = merge_feeds(feeds, tmp_path / "fleet.jsonl")
        assert validate_feed(merged) == []
        assert {f["label"] for f in merged["frames"]} == {"queue", "steals"}

    def test_obs_job_without_live_has_no_feed(self, tmp_path):
        from repro.fleet.jobs import execute_job, obs_jobs

        job = obs_jobs(["queue"], str(tmp_path))[0]
        result = execute_job(job)
        assert result.ok and result.payload["live_path"] is None


class TestCli:
    def test_run_and_top(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        feed = tmp_path / "feed.jsonl"
        assert main(["run", "queue", "--live", str(feed),
                     "--live-interval", "0.00005"]) == 0
        assert main(["top", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "queue" in out and "p99" in out

    def test_top_rejects_non_feed(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        p = tmp_path / "x.jsonl"
        p.write_text(json.dumps({"schema": "nope"}) + "\n")
        assert main(["top", str(p)]) != 0
