"""Schedule-exploration strategies for the model checker.

Every strategy here plugs into the engine's decision points (see
:class:`repro.sim.engine.SchedulingStrategy`) and **records** each
decision it makes — which runnable process it resumed, which extra
latency it injected — into a flat decision list.  A recorded list can be
fed back through :class:`ReplayStrategy` to re-execute the exact same
interleaving, which is what makes failures found by exploration
reproducible and minimizable (see :mod:`repro.check.traces`).

Decision records are plain JSON-serializable dicts:

``{"k": "pick", "rank": r}``
    A resume decision: among the runnable candidates, the process with
    rank ``r`` was resumed.
``{"k": "delay", "i": n, "s": seconds, "site": site}``
    The ``n``-th call to :meth:`delay` injected ``seconds`` of extra
    virtual latency (zero-delay calls are not recorded; ``i`` aligns
    them at replay time).
"""

from __future__ import annotations

import random
from collections import deque

from repro.sim.engine import Engine, SchedulingStrategy

__all__ = [
    "DeterministicStrategy",
    "ExplorationStrategy",
    "RandomWalk",
    "PctStrategy",
    "DelayInjector",
    "ReplayStrategy",
    "make_strategy",
    "STRATEGIES",
]


class DeterministicStrategy(SchedulingStrategy):
    """The engine's historical order, bit-for-bit (explicit spelling of
    ``strategy=None``; useful as a control in tests and sweeps)."""


class ExplorationStrategy(SchedulingStrategy):
    """Base for seeded, recording exploration strategies."""

    explores = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.decisions: list[dict] = []
        self._delay_calls = 0

    def begin(self, engine: Engine) -> None:
        super().begin(engine)

    # ------------------------------------------------------------------ #
    # Recording helpers
    # ------------------------------------------------------------------ #
    def _record_pick(self, rank: int) -> None:
        self.decisions.append({"k": "pick", "rank": rank})

    def _record_delay(self, seconds: float, site: str) -> None:
        self.decisions.append(
            {"k": "delay", "i": self._delay_calls, "s": seconds, "site": site}
        )


class RandomWalk(ExplorationStrategy):
    """Uniform random walk over the schedule space.

    At every decision point, resume a uniformly random runnable process.
    With per-seed reproducible traces this is the workhorse strategy:
    cheap, unbiased, and surprisingly effective at flushing out ordering
    bugs that the deterministic schedule can never reach.
    """

    def choose(self, candidates: list[tuple[float, int, int, int]]) -> int:
        idx = self.rng.randrange(len(candidates))
        self._record_pick(candidates[idx][2])
        return idx


class PctStrategy(ExplorationStrategy):
    """Probabilistic concurrency testing (Burckhardt et al., ASPLOS'10).

    Each process gets a random priority; the highest-priority runnable
    process always runs.  At ``depth - 1`` randomly chosen decision
    points the running process's priority is demoted below everyone
    else's, forcing a context switch exactly where a bug of "depth" d
    needs one.  Finds low-depth ordering bugs with provable probability,
    typically much faster than a uniform random walk.

    PCT assumes programs terminate under any fair schedule; the Scioto
    runtime's steal/poll loops do not (an idle thief re-enters the
    runnable set on every poll timeout), so strict priority would starve
    every other process forever.  ``fair_bound`` caps how many
    consecutive decision points one process may win while others are
    runnable; hitting the cap forces an extra priority change point.
    """

    def __init__(
        self, seed: int = 0, depth: int = 3, horizon: int = 4000, fair_bound: int = 64
    ) -> None:
        super().__init__(seed)
        self.depth = depth
        self.horizon = horizon
        self.fair_bound = fair_bound
        self._steps = 0
        self._change_points: set[int] = set()
        self._priorities: dict[int, float] = {}
        self._demote_next = 0.0  # strictly decreasing floor for demotions
        self._last_rank: int | None = None
        self._run_len = 0

    def begin(self, engine: Engine) -> None:
        super().begin(engine)
        ranks = list(range(engine.nprocs))
        self.rng.shuffle(ranks)
        # initial priorities are a random permutation, all above 0
        self._priorities = {r: float(i + 1) for i, r in enumerate(ranks)}
        n_changes = max(0, self.depth - 1)
        self._change_points = set(
            self.rng.sample(range(self.horizon), min(n_changes, self.horizon))
        )

    def _demote(self, rank: int) -> None:
        self._demote_next -= 1.0
        self._priorities[rank] = self._demote_next

    def choose(self, candidates: list[tuple[float, int, int, int]]) -> int:
        by_priority = lambda i: self._priorities.get(candidates[i][2], 0.0)  # noqa: E731
        idx = max(range(len(candidates)), key=by_priority)
        rank = candidates[idx][2]
        if rank == self._last_rank:
            self._run_len += 1
            if self._run_len >= self.fair_bound:
                self._demote(rank)
                idx = max(range(len(candidates)), key=by_priority)
                rank = candidates[idx][2]
                self._run_len = 0
        else:
            self._run_len = 0
        self._last_rank = rank
        if self._steps in self._change_points:
            self._demote(rank)
        self._steps += 1
        self._record_pick(rank)
        return idx


class DelayInjector(ExplorationStrategy):
    """Bounded latency injection plus occasional preemption.

    Models an adversarial network/NIC: every sync or wake-up (the ARMCI
    operation boundaries — each one-sided op serializes through
    ``Proc.sync``, each message delivery through ``Engine.wake``) may be
    stretched by a bounded random delay, and the resume order is
    occasionally perturbed.  Unlike :class:`RandomWalk` this keeps the
    run *timing-plausible*: virtual time still mostly drives ordering,
    with jitter comparable to real message-latency variance.
    """

    def __init__(
        self,
        seed: int = 0,
        p_delay: float = 0.2,
        max_delay: float = 5e-6,
        p_preempt: float = 0.1,
    ) -> None:
        super().__init__(seed)
        self.p_delay = p_delay
        self.max_delay = max_delay
        self.p_preempt = p_preempt

    def choose(self, candidates: list[tuple[float, int, int, int]]) -> int:
        if self.rng.random() < self.p_preempt:
            idx = self.rng.randrange(len(candidates))
        else:
            idx = 0  # engine default: earliest (time, seq)
        self._record_pick(candidates[idx][2])
        return idx

    def delay(self, proc, site: str) -> float:
        d = 0.0
        if self.rng.random() < self.p_delay:
            d = self.rng.uniform(0.0, self.max_delay)
            self._record_delay(d, site)
        self._delay_calls += 1
        return d


class ReplayStrategy(SchedulingStrategy):
    """Deterministically re-execute a recorded decision list.

    Picks are consumed one per decision point and matched by *rank* (not
    index), so a trace stays meaningful even after the minimizer drops
    decisions: a missing or unmatchable pick simply falls back to the
    engine's default order.  Delays are matched by call index.
    """

    explores = True

    def __init__(self, decisions: list[dict]) -> None:
        self.decisions = list(decisions)
        self._picks: deque[int] = deque(
            d["rank"] for d in decisions if d["k"] == "pick"
        )
        self._delays: deque[tuple[int, float]] = deque(
            (d["i"], d["s"]) for d in decisions if d["k"] == "delay"
        )
        self._delay_calls = 0
        self.divergences = 0  # decision points not covered by the trace

    def choose(self, candidates: list[tuple[float, int, int, int]]) -> int:
        if self._picks:
            rank = self._picks.popleft()
            for i, entry in enumerate(candidates):
                if entry[2] == rank:
                    return i
        self.divergences += 1
        return 0

    def delay(self, proc, site: str) -> float:
        d = 0.0
        if self._delays and self._delays[0][0] == self._delay_calls:
            d = self._delays.popleft()[1]
        self._delay_calls += 1
        return d


#: CLI names for the exploration strategies.
STRATEGIES = {
    "random": RandomWalk,
    "pct": PctStrategy,
    "delay": DelayInjector,
    "deterministic": DeterministicStrategy,
}


def make_strategy(name: str, seed: int = 0) -> SchedulingStrategy:
    """Instantiate strategy ``name`` with ``seed`` (see :data:`STRATEGIES`)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    if cls is DeterministicStrategy:
        return cls()
    return cls(seed=seed)
