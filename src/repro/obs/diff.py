"""Trajectory differ: compare two benchmark/metrics JSON documents.

The repo commits reference trajectories — ``BENCH_sim.json`` (virtual
time, schema ``repro-bench/1``), ``BENCH_wall.json`` (wall clock,
``repro-bench-wall/1``) — and ``repro.obs run`` writes metrics documents
(``repro-obs-metrics/1`` or ``/2``).  ``python -m repro.obs diff OLD
NEW`` loads two documents of the same schema, matches their series by
stable keys, and reports every relative change beyond a threshold:

* ``repro-bench/1`` — series matched by ``(experiment, label)``; the
  worst pointwise relative delta decides.  Direction comes from the
  unit/label: times (``us``, ``s``, ``seconds``) regress upward,
  rates (``speedup``, ``throughput``, ``tasks/s``) regress downward,
  anything else is direction-neutral and only *warns* on change.
* ``repro-obs-metrics/1|2`` — counter totals and histogram count are
  determinism signals (any change warns); histogram mean/p95 and
  gauge min/max regress upward beyond the threshold.  A schema /2
  ``windows`` series additionally diffs each metric's *worst window*
  (maximum windowed p95/p99 across the run), with direction inferred
  from the metric name's unit — latency-style metrics regress upward,
  count-style ones only warn.
* ``repro-bench-wall/1`` — entries matched by ``(scenario, backend,
  nprocs, seed)``; ``events`` must be *exactly* equal (the simulated
  schedule is deterministic — a drift here is a bug, not noise) and
  ``best_wall_s`` regresses upward.
* ``repro-bench-fleet/1`` — entries matched by ``jobs``; ``schedules``
  and ``failing_digest`` must be exactly equal (the campaign is
  deterministic for any worker count) and ``schedules_per_sec``
  regresses downward.

The CI perf gate runs this warn-only against the committed baseline;
``--fail-on-regress`` turns regressions into exit code 1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["DiffEntry", "DiffReport", "diff_documents", "diff_files", "render_diff"]

#: Relative change below which a delta is considered noise.
DEFAULT_THRESHOLD = 0.10

_LOWER_BETTER_UNITS = {"us", "ms", "s", "sec", "seconds", "ns"}
_HIGHER_BETTER_HINTS = ("speedup", "throughput", "tasks/s", "nodes/s", "per_sec", "/s")


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity."""

    key: str  #: stable series identifier, e.g. "table1/cluster-measured"
    metric: str  #: which number, e.g. "ys[3]" or "best_wall_s"
    old: float | None
    new: float | None
    rel: float  #: relative delta |new-old| / max(|old|, eps), signed by new-old
    status: str  #: ok | changed | regress | improve | added | removed | mismatch

    def describe(self) -> str:
        if self.status in ("added", "removed"):
            return f"{self.status:>8}  {self.key} [{self.metric}]"
        arrow = f"{self.old:g} -> {self.new:g}"
        return (
            f"{self.status:>8}  {self.key} [{self.metric}]  {arrow}"
            f"  ({self.rel:+.1%})"
        )


@dataclass
class DiffReport:
    """All diff entries plus the derived verdicts."""

    schema: str
    threshold: float
    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.status in ("regress", "mismatch")]

    @property
    def changes(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.status not in ("ok", "improve")]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _rel(old: float, new: float) -> float:
    denom = max(abs(old), 1e-12)
    return (new - old) / denom


def _direction(unit: str | None, label: str) -> str:
    """'down' = lower is better, 'up' = higher is better, 'neutral'."""
    text = f"{unit or ''} {label}".lower()
    if any(h in text for h in _HIGHER_BETTER_HINTS):
        return "up"
    if unit and unit.lower() in _LOWER_BETTER_UNITS:
        return "down"
    return "neutral"


def _classify(rel: float, threshold: float, direction: str) -> str:
    if abs(rel) <= threshold:
        return "ok"
    if direction == "down":
        return "regress" if rel > 0 else "improve"
    if direction == "up":
        return "regress" if rel < 0 else "improve"
    return "changed"


def _compare(
    report: DiffReport,
    key: str,
    metric: str,
    old: float | None,
    new: float | None,
    direction: str = "neutral",
    exact: bool = False,
) -> None:
    if old is None and new is None:
        return
    if old is None:
        report.entries.append(DiffEntry(key, metric, None, new, 0.0, "added"))
        return
    if new is None:
        report.entries.append(DiffEntry(key, metric, old, None, 0.0, "removed"))
        return
    rel = _rel(old, new)
    if exact:
        status = "ok" if new == old else "mismatch"
    else:
        status = _classify(rel, report.threshold, direction)
    report.entries.append(DiffEntry(key, metric, old, new, rel, status))


# ---------------------------------------------------------------------- #
# Per-schema walkers
# ---------------------------------------------------------------------- #
def _diff_bench(report: DiffReport, old: dict, new: dict) -> None:
    def series_map(doc: dict) -> dict[tuple[str, str], dict]:
        out = {}
        for exp in doc.get("experiments", []):
            for s in exp.get("series", []):
                out[(exp["experiment"], s["label"])] = s
        return out

    olds, news = series_map(old), series_map(new)
    for k in sorted(olds.keys() | news.keys()):
        key = f"{k[0]}/{k[1]}"
        o, n = olds.get(k), news.get(k)
        if o is None or n is None:
            _compare(report, key, "series", None if o is None else 0.0,
                     None if n is None else 0.0)
            continue
        direction = _direction(n.get("unit"), k[1])
        oys, nys = o.get("ys", []), n.get("ys", [])
        if len(oys) != len(nys):
            report.entries.append(
                DiffEntry(key, "len(ys)", float(len(oys)), float(len(nys)),
                          _rel(len(oys), len(nys)), "mismatch")
            )
            continue
        # Report only the worst point per series to keep output readable.
        worst = None
        for i, (ov, nv) in enumerate(zip(oys, nys)):
            rel = _rel(ov, nv)
            if worst is None or abs(rel) > abs(worst[1]):
                worst = (i, rel, ov, nv)
        if worst is None:
            continue
        i, rel, ov, nv = worst
        _compare(report, key, f"ys[{i}]", ov, nv, direction)


def _diff_metrics(report: DiffReport, old: dict, new: dict) -> None:
    ocnt = old.get("counters", {}).get("total", {})
    ncnt = new.get("counters", {}).get("total", {})
    for k in sorted(ocnt.keys() | ncnt.keys()):
        _compare(report, f"counter/{k}", "total", ocnt.get(k), ncnt.get(k))
    ohist = old.get("histograms", {})
    nhist = new.get("histograms", {})
    for k in sorted(ohist.keys() | nhist.keys()):
        o, n = ohist.get(k), nhist.get(k)
        if o is None or n is None:
            _compare(report, f"histogram/{k}", "count",
                     None if o is None else o.get("count"),
                     None if n is None else n.get("count"))
            continue
        _compare(report, f"histogram/{k}", "count", o.get("count"), n.get("count"))
        _compare(report, f"histogram/{k}", "mean", o.get("mean"), n.get("mean"), "down")
        _compare(report, f"histogram/{k}", "p95",
                 _hist_quantile(o, 0.95), _hist_quantile(n, 0.95), "down")
    ogauge = old.get("gauges", {})
    ngauge = new.get("gauges", {})
    for k in sorted(ogauge.keys() | ngauge.keys()):
        o, n = ogauge.get(k, {}), ngauge.get(k, {})
        _compare(report, f"gauge/{k}", "max", o.get("max"), n.get("max"), "down")
    _diff_windows(report, old.get("windows") or {}, new.get("windows") or {})


def _metric_direction(name: str) -> str:
    """Direction for a windowed metric, inferred from its name's unit.

    Latency-style metrics (seconds) regress upward; count-style ones
    (chunk sizes, occupancy) are direction-neutral and only warn.
    """
    text = name.lower()
    if any(h in text for h in ("latency", "wait", "hold", "time", "rtt", "wall")):
        return "down"
    return "neutral"


def _diff_windows(report: DiffReport, old: dict, new: dict) -> None:
    """Compare two rolling-window series (schema /2 ``windows`` key).

    Window boundaries are virtual-time-deterministic, but two documents
    may legitimately differ in which windows are non-empty, so series
    are not matched window-by-window.  Instead each metric is reduced to
    its *worst window* — the maximum windowed p95/p99 across the run —
    which is exactly the tail-spike signal the windows exist to expose,
    plus the total windowed count and the number of active windows as
    determinism-style change signals.
    """
    if not old and not new:
        return
    _compare(report, "windows", "interval", old.get("interval"),
             new.get("interval"), exact=True)

    def aggregate(doc: dict) -> dict[str, dict]:
        agg: dict[str, dict] = {}
        for w in doc.get("series", []):
            for name, h in w.get("histograms", {}).items():
                a = agg.setdefault(
                    name, {"count": 0, "windows": 0, "p95": None, "p99": None}
                )
                a["count"] += h.get("count", 0)
                a["windows"] += 1
                for q in ("p95", "p99"):
                    v = h.get(q)
                    if v is not None and (a[q] is None or v > a[q]):
                        a[q] = v
        return agg

    oagg, nagg = aggregate(old), aggregate(new)
    for name in sorted(oagg.keys() | nagg.keys()):
        key = f"windows/{name}"
        o, n = oagg.get(name), nagg.get(name)
        if o is None or n is None:
            _compare(report, key, "count",
                     None if o is None else o["count"],
                     None if n is None else n["count"])
            continue
        direction = _metric_direction(name)
        _compare(report, key, "windows", o["windows"], n["windows"])
        _compare(report, key, "count", o["count"], n["count"])
        _compare(report, key, "worst p95", o["p95"], n["p95"], direction)
        _compare(report, key, "worst p99", o["p99"], n["p99"], direction)


def _hist_quantile(h: dict, q: float) -> float | None:
    """Quantile of a serialized histogram; prefers a stored percentile."""
    stored = h.get(f"p{int(q * 100)}")
    if stored is not None:
        return stored
    count = h.get("count", 0)
    if not count:
        return None
    edges, counts = h.get("edges", []), h.get("counts", [])
    target = q * count
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= target and c:
            return edges[i] if i < len(edges) else h.get("max")
    return h.get("max")


def _diff_wall(report: DiffReport, old: dict, new: dict) -> None:
    def entry_map(doc: dict) -> dict[tuple, dict]:
        return {
            (e["scenario"], e.get("backend", "thread"), e["nprocs"], e["seed"]): e
            for e in doc.get("entries", [])
        }

    olds, news = entry_map(old), entry_map(new)
    for k in sorted(olds.keys() | news.keys()):
        key = f"{k[0]}[{k[1]},np={k[2]},seed={k[3]}]"
        o, n = olds.get(k), news.get(k)
        if o is None or n is None:
            _compare(report, key, "entry", None if o is None else 0.0,
                     None if n is None else 0.0)
            continue
        # The simulated schedule is deterministic: event-count drift is a
        # correctness signal, not perf noise.
        _compare(report, key, "events", o.get("events"), n.get("events"),
                 exact=True)
        _compare(report, key, "best_wall_s", o.get("best_wall_s"),
                 n.get("best_wall_s"), "down")


def _diff_fleet(report: DiffReport, old: dict, new: dict) -> None:
    def entry_map(doc: dict) -> dict[int, dict]:
        return {e["jobs"]: e for e in doc.get("entries", [])}

    olds, news = entry_map(old), entry_map(new)
    for k in sorted(olds.keys() | news.keys()):
        key = f"fleet[jobs={k}]"
        o, n = olds.get(k), news.get(k)
        if o is None or n is None:
            _compare(report, key, "entry", None if o is None else 0.0,
                     None if n is None else 0.0)
            continue
        # The campaign is deterministic: schedule counts and the failing
        # set must match exactly; throughput regresses downward.
        _compare(report, key, "schedules", o.get("schedules"),
                 n.get("schedules"), exact=True)
        _compare(report, key, "schedules_per_sec", o.get("schedules_per_sec"),
                 n.get("schedules_per_sec"), "up")
        od, nd = o.get("failing_digest"), n.get("failing_digest")
        if od != nd:
            report.entries.append(
                DiffEntry(key, "failing_digest", 0.0, 1.0, 0.0, "mismatch")
            )


_WALKERS = {
    "repro-bench/1": _diff_bench,
    "repro-obs-metrics/1": _diff_metrics,
    "repro-obs-metrics/2": _diff_metrics,
    "repro-bench-wall/1": _diff_wall,
    "repro-bench-fleet/1": _diff_fleet,
}


def diff_documents(
    old: dict, new: dict, threshold: float = DEFAULT_THRESHOLD
) -> DiffReport:
    """Diff two parsed documents; their schemas must be compatible."""
    oschema, nschema = old.get("schema"), new.get("schema")
    walker = _WALKERS.get(nschema or "")
    if walker is None:
        raise ValueError(
            f"unsupported schema {nschema!r}; known: {sorted(_WALKERS)}"
        )
    if _WALKERS.get(oschema or "") is not walker:
        raise ValueError(f"schema mismatch: old={oschema!r} new={nschema!r}")
    report = DiffReport(schema=nschema, threshold=threshold)
    walker(report, old, new)
    return report


def diff_files(
    old_path: str | Path, new_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> DiffReport:
    """Load two JSON files and diff them."""
    old = json.loads(Path(old_path).read_text())
    new = json.loads(Path(new_path).read_text())
    return diff_documents(old, new, threshold)


def render_diff(report: DiffReport, verbose: bool = False) -> str:
    """Human-readable report; quiet when everything is within threshold."""
    shown = report.entries if verbose else report.changes
    lines = [
        f"diff ({report.schema}, threshold {report.threshold:.0%}): "
        f"{len(report.entries)} compared, {len(report.changes)} changed, "
        f"{len(report.regressions)} regressed"
    ]
    for e in shown:
        lines.append("  " + e.describe())
    if not shown:
        lines.append("  (no changes beyond threshold)")
    return "\n".join(lines)
