"""The span recorder: nested virtual-time spans plus the metrics registry.

A :class:`Recorder` attaches to an engine exactly like the tracer and
the race detector: ``Recorder.attach(engine)`` before ``engine.run()``,
``Recorder.of(engine)`` afterwards.  The runtime layers call the free
functions in this module (:func:`span`, :func:`observe`, :func:`count`,
:func:`sample`, :func:`instant`) at their interesting points; when no
recorder is attached each call costs a single dict probe and records
nothing, so instrumented code stays safe on hot paths.

Recording is an *observer* of virtual time: hooks only ever read
``proc.now`` — they never advance a clock, yield to the engine, or touch
an RNG — so enabling it leaves the deterministic schedule, all virtual
timings, and all `Counters` totals bit-for-bit unchanged (tested, and
checkable with ``python -m repro.obs verify``).

Span nesting is per rank: spans opened while another span of the same
rank is still open become its children (``depth``/``parent``), which is
what lets the Chrome-trace exporter draw one stacked track per rank.

Causal edges
------------

Besides per-rank spans, the recorder keeps the *cross-rank* causal
edges that turn the span stream into a happens-before DAG
(:mod:`repro.obs.critpath`).  Each :class:`EdgeRecord` connects a
source point ``(src_rank, src_time)`` to a destination point
``(dst_rank, dst_time)`` and carries a stable id (emission order,
deterministic because the schedule is).  The runtime layers emit them
at the four synchronization sites where one rank's progress causally
depends on another's:

* ``steal`` — a successful steal back to the victim-side release that
  made the tasks stealable (``core/queue.py``);
* ``msg`` — a mailbox message (termination token) from its post to the
  poll that consumed it (``armci/runtime.py``);
* ``lock`` — a contended mutex grant from the releaser to the woken
  waiter (``sim/resources.py``);
* ``spawn`` — a task's queue insertion to its execution
  (``core/queue.py`` → ``core/scheduler.py``);
* ``dirty`` — a §5.3 dirty mark landing in the victim's memory
  (``core/termination.py``).

Edges are metadata-only: emission reads ``proc.now`` and appends to a
list, exactly like spans, so the span stream (and the schedule) is
bit-for-bit identical with edges on or off — ``repro.obs verify``
checks this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc

__all__ = [
    "Recorder",
    "SpanRecord",
    "InstantRecord",
    "EdgeRecord",
    "span",
    "observe",
    "count",
    "sample",
    "instant",
    "causal_edge",
    "edge_mark",
    "edge_here",
    "edge_send",
    "edge_recv",
]

_KEY = "obs"


@dataclass
class SpanRecord:
    """One (possibly still open) recorded span."""

    rank: int
    name: str
    category: str
    start: float
    end: float | None = None
    depth: int = 0
    parent: int | None = None  #: index of the enclosing span, or None
    detail: Any = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class InstantRecord:
    """A zero-duration marker event (e.g. a dirty mark landing)."""

    time: float
    rank: int
    name: str
    category: str
    detail: Any = None


@dataclass(frozen=True)
class EdgeRecord:
    """One cross-rank happens-before edge (source point → destination)."""

    eid: int  #: stable id (emission order; deterministic per run)
    kind: str  #: steal | msg | lock | spawn | dirty
    src_rank: int
    src_time: float
    dst_rank: int
    dst_time: float
    detail: Any = None

    @property
    def latency(self) -> float:
        """The edge's measured causal delay (clamped to be non-negative)."""
        return max(self.dst_time - self.src_time, 0.0)


class _NullSpan:
    """Shared no-op context manager returned when recording is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that closes its span at the rank's current time."""

    __slots__ = ("_rec", "_proc", "_index")

    def __init__(self, rec: "Recorder", proc: "Proc", index: int | None) -> None:
        self._rec = rec
        self._proc = proc
        self._index = index

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._rec._close(self._proc, self._index)
        return False


class Recorder:
    """Engine-wide span + metrics recorder (attach-based, off by default)."""

    _KEY = _KEY

    def __init__(
        self, engine: "Engine", capacity: int = 2_000_000, edges: bool = True
    ) -> None:
        self.engine = engine
        self.capacity = capacity
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.edges: list[EdgeRecord] = []
        self.edges_enabled = edges
        self.dropped = 0
        self.metrics = MetricsRegistry()
        # per-rank stacks of open span indexes (None = dropped placeholder)
        self._stacks: list[list[int | None]] = [[] for _ in range(engine.nprocs)]
        # single-slot edge sources: key -> (rank, time, detail)
        self._edge_marks: dict[Any, tuple[int, float, Any]] = {}
        # FIFO edge sources mirroring message queues: key -> deque of sources
        self._edge_pending: dict[Any, deque[tuple[int, float, Any]]] = {}

    @classmethod
    def attach(
        cls, engine: "Engine", capacity: int = 2_000_000, edges: bool = True
    ) -> "Recorder":
        """Enable recording on ``engine`` (idempotent)."""
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine, capacity, edges=edges)
            engine.state[cls._KEY] = inst
        return inst

    @classmethod
    def of(cls, engine: "Engine") -> "Recorder | None":
        """The engine's recorder, or None if recording is off."""
        return engine.state.get(cls._KEY)

    # ------------------------------------------------------------------ #
    # Span API
    # ------------------------------------------------------------------ #
    def span(self, proc: "Proc", name: str, category: str, detail: Any = None) -> _OpenSpan:
        """Open a span on ``proc``'s rank; close it by exiting the context."""
        stack = self._stacks[proc.rank]
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            stack.append(None)
            return _OpenSpan(self, proc, None)
        parent = next((i for i in reversed(stack) if i is not None), None)
        index = len(self.spans)
        self.spans.append(
            SpanRecord(
                rank=proc.rank,
                name=name,
                category=category,
                start=proc.now,
                depth=len(stack),
                parent=parent,
                detail=detail,
            )
        )
        stack.append(index)
        return _OpenSpan(self, proc, index)

    def _close(self, proc: "Proc", index: int | None) -> None:
        stack = self._stacks[proc.rank]
        if not stack or stack[-1] != index:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span close out of order on rank {proc.rank}: "
                f"closing {index}, top of stack is {stack[-1] if stack else None}"
            )
        stack.pop()
        if index is not None:
            self.spans[index].end = proc.now

    def complete_span(
        self,
        proc: "Proc",
        name: str,
        category: str,
        start: float,
        detail: Any = None,
    ) -> None:
        """Record an already-finished span from ``start`` to ``proc.now``.

        For protocol intervals that do not nest with the call stack —
        e.g. a termination wave (launched in one scheduler iteration,
        completed in a later one) or a contended lock wait.  Recorded at
        depth 0; it still lands on the rank's track in the exports.
        """
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(
            SpanRecord(
                rank=proc.rank,
                name=name,
                category=category,
                start=start,
                end=proc.now,
                detail=detail,
            )
        )

    def instant_event(
        self, proc: "Proc", name: str, category: str, detail: Any = None
    ) -> None:
        """Record a zero-duration marker at the rank's current time."""
        if len(self.instants) >= self.capacity:
            self.dropped += 1
            return
        self.instants.append(
            InstantRecord(proc.now, proc.rank, name, category, detail)
        )

    # ------------------------------------------------------------------ #
    # Causal-edge API (metadata-only; see module docstring)
    # ------------------------------------------------------------------ #
    def add_edge(
        self,
        kind: str,
        src_rank: int,
        src_time: float,
        dst_rank: int,
        dst_time: float,
        detail: Any = None,
    ) -> None:
        """Record one happens-before edge with a stable, monotone id."""
        if len(self.edges) >= self.capacity:
            self.dropped += 1
            return
        self.edges.append(
            EdgeRecord(
                eid=len(self.edges),
                kind=kind,
                src_rank=src_rank,
                src_time=src_time,
                dst_rank=dst_rank,
                dst_time=dst_time,
                detail=detail,
            )
        )

    def mark(self, key: Any, proc: "Proc", detail: Any = None) -> None:
        """Remember ``proc``'s current point as the source for ``key``."""
        self._edge_marks[key] = (proc.rank, proc.now, detail)

    def edge_from_mark(
        self, key: Any, proc: "Proc", kind: str, detail: Any = None,
        clear: bool = False,
    ) -> None:
        """Emit an edge from the remembered source for ``key`` to here."""
        src = self._edge_marks.pop(key, None) if clear else self._edge_marks.get(key)
        if src is None:
            return
        self.add_edge(
            kind, src[0], src[1], proc.rank, proc.now,
            detail=detail if detail is not None else src[2],
        )

    def push_pending(self, key: Any, proc: "Proc", detail: Any = None) -> None:
        """FIFO variant of :meth:`mark`, mirroring a message queue."""
        self._edge_pending.setdefault(key, deque()).append(
            (proc.rank, proc.now, detail)
        )

    def edge_from_pending(
        self, key: Any, proc: "Proc", kind: str, detail: Any = None
    ) -> None:
        """Pop the oldest pending source for ``key`` and emit an edge.

        The pending queue is appended on send and popped on receive in
        the same virtual-time order as the underlying mailbox deque, so
        sources and destinations pair up exactly.
        """
        q = self._edge_pending.get(key)
        if not q:
            return
        src = q.popleft()
        self.add_edge(
            kind, src[0], src[1], proc.rank, proc.now,
            detail=detail if detail is not None else src[2],
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def stream_fingerprint(self) -> tuple:
        """The span/instant stream as comparable structure.

        Span ``detail`` is excluded: task uids are allocated from a
        process-wide counter, so two otherwise identical runs in one
        process record different uids.  Everything structural — rank,
        name, category, timing, nesting — is covered, which is what the
        edges-on vs. edges-off equality check in ``repro.obs verify``
        needs.
        """
        return (
            tuple(
                (s.rank, s.name, s.category, s.start, s.end, s.depth, s.parent)
                for s in self.spans
            ),
            tuple((i.time, i.rank, i.name, i.category) for i in self.instants),
        )

    def finished_spans(self) -> list[SpanRecord]:
        """All spans that have been closed (open ones are excluded)."""
        return [s for s in self.spans if s.end is not None]

    def by_category(self, category: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.category == category]


# ---------------------------------------------------------------------- #
# Free-function hooks (zero-cost when no recorder is attached)
# ---------------------------------------------------------------------- #
def span(proc: "Proc", name: str, category: str = "runtime", detail: Any = None):
    """Context manager recording a span on ``proc``'s rank (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is None:
        return _NULL_SPAN
    return rec.span(proc, name, category, detail)


def observe(proc: "Proc", name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.metrics.observe(name, value, rank=proc.rank)


def count(proc: "Proc", name: str, amount: float = 1.0) -> None:
    """Increment obs counter ``name`` for ``proc``'s rank (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.metrics.add(proc.rank, name, amount)


def sample(proc: "Proc", name: str, value: float) -> None:
    """Set gauge ``name`` on ``proc``'s rank to ``value`` (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.metrics.sample(name, proc.rank, value)


def instant(proc: "Proc", name: str, category: str = "runtime", detail: Any = None) -> None:
    """Record a zero-duration marker event (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.instant_event(proc, name, category, detail)


def _edge_recorder(proc: "Proc") -> "Recorder | None":
    rec = proc.engine.state.get(_KEY)
    return rec if rec is not None and rec.edges_enabled else None


def causal_edge(
    proc: "Proc",
    kind: str,
    src_rank: int,
    src_time: float,
    detail: Any = None,
) -> None:
    """Record an edge from ``(src_rank, src_time)`` to here (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.add_edge(kind, src_rank, src_time, proc.rank, proc.now, detail)


def edge_mark(proc: "Proc", key: Any, detail: Any = None) -> None:
    """Remember this point as the edge source for ``key`` (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.mark(key, proc, detail)


def edge_here(
    proc: "Proc", key: Any, kind: str, detail: Any = None, clear: bool = False
) -> None:
    """Emit an edge from ``key``'s remembered source to here (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.edge_from_mark(key, proc, kind, detail=detail, clear=clear)


def edge_send(proc: "Proc", key: Any, detail: Any = None) -> None:
    """FIFO-enqueue this point as a pending edge source (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.push_pending(key, proc, detail)


def edge_recv(proc: "Proc", key: Any, kind: str, detail: Any = None) -> None:
    """Emit an edge from the oldest pending source for ``key`` to here."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.edge_from_pending(key, proc, kind, detail=detail)
