"""Sequential contraction reference (plain NumPy)."""

from __future__ import annotations

import numpy as np

from repro.apps.tce.problem import TCEProblem

__all__ = ["contract_sequential"]


def contract_sequential(problem: TCEProblem) -> np.ndarray:
    """Dense reference result of ``C = A @ B`` for the instance."""
    return problem.dense_a() @ problem.dense_b()
