"""``repro.obs`` — unified observability: spans, metrics, timeline export.

The paper's whole evaluation (§6) is about *where time goes* — task
execution vs. queue management vs. stealing vs. termination.  This
package is the instrumentation that answers that question for the
simulated runtime:

* **Spans** (:mod:`repro.obs.record`): nested virtual-time intervals
  recorded by the runtime layers — task execution, steal attempts,
  split-queue moves, lock waits, termination waves, one-sided
  operations.  Attach-based and zero-cost when off, like the tracer
  and the race detector; recording never perturbs the deterministic
  schedule.
* **Metrics** (:mod:`repro.obs.metrics`): counters (the long-standing
  ``Counters`` map is now a facade over :class:`CounterFamily`),
  gauges, and fixed-bucket histograms (steal latency, stolen chunk
  size, queue occupancy, wave round-trip, lock hold/wait).
* **Events** (:mod:`repro.obs.tracing`): the structured event tracer,
  re-homed here from ``repro.sim.tracing`` (old path removed).
* **Exporters** (:mod:`repro.obs.export`): Chrome ``trace_event`` JSON
  (open in Perfetto; causal edges drawn as flow arrows, the critical
  path as its own process), flat metrics JSON, ASCII per-rank timeline.
* **Analysis** (:mod:`repro.obs.analyze`): post-hoc summaries and
  critical-idle gap hunting over exported traces.
* **Causal profiling** (:mod:`repro.obs.critpath`,
  :mod:`repro.obs.whatif`): the cross-rank happens-before DAG built
  from spans plus causal edges, critical-path extraction with an exact
  blame decomposition of the makespan, and Coz-style what-if
  projection ("what if steals were 2x faster?").
* **Regression gate** (:mod:`repro.obs.diff`): a trajectory differ for
  the committed benchmark/metrics JSON documents.

CLI::

    python -m repro.obs run uts-small --trace out.json --metrics m.json
    python -m repro.obs summarize out.json
    python -m repro.obs critical-idle out.json --top 10
    python -m repro.obs critpath uts-small --trace crit.json
    python -m repro.obs whatif uts-small --scale steal=0.5
    python -m repro.obs diff BENCH_sim.json fresh.json
    python -m repro.obs verify          # recording-on == recording-off

See ``docs/observability.md`` for the full API and cost model.
"""

from repro.obs.analyze import (
    IdleGap,
    critical_idle,
    load_chrome_trace,
    load_metrics_json,
    percentile_table,
    summarize,
)
from repro.obs.critpath import (
    BLAME_CATEGORIES,
    CausalGraph,
    CritPath,
    PathStep,
    blame_profile,
    critical_path,
    edge_blame,
)
from repro.obs.diff import DiffEntry, DiffReport, diff_documents, diff_files
from repro.obs.export import (
    FLOW_KINDS,
    METRICS_SCHEMA,
    ascii_timeline,
    chrome_trace,
    metrics_dict,
    self_times,
    summary_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.record import (
    EdgeRecord,
    InstantRecord,
    Recorder,
    SpanRecord,
    causal_edge,
    count,
    instant,
    observe,
    sample,
    span,
)
from repro.obs.tracing import TraceEvent, Tracer, trace
from repro.obs.whatif import Projection, project

__all__ = [
    "Recorder",
    "SpanRecord",
    "InstantRecord",
    "EdgeRecord",
    "span",
    "observe",
    "count",
    "sample",
    "instant",
    "causal_edge",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TraceEvent",
    "trace",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dict",
    "write_metrics_json",
    "ascii_timeline",
    "summary_table",
    "self_times",
    "METRICS_SCHEMA",
    "FLOW_KINDS",
    "load_chrome_trace",
    "load_metrics_json",
    "percentile_table",
    "summarize",
    "critical_idle",
    "IdleGap",
    "BLAME_CATEGORIES",
    "CausalGraph",
    "CritPath",
    "PathStep",
    "blame_profile",
    "critical_path",
    "edge_blame",
    "Projection",
    "project",
    "DiffEntry",
    "DiffReport",
    "diff_documents",
    "diff_files",
]
