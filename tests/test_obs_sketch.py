"""QuantileSketch error bound, merge algebra, and RollingWindows edges.

The sketch's contract is the tentpole of the live-telemetry work: every
quantile estimate is within relative error ``alpha`` of a true sample
value, merges are exact (fleet aggregation), and deltas are exact
(rolling windows).  The property test drives the bound with hypothesis;
the fleet test checks that sketches merged from serialized worker
registries answer percentile queries identically to one single-process
registry over the same observations.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, QuantileSketch, RollingWindows


def exact_quantile(values, q):
    """The rank rule the sketch uses: first value reaching q * count."""
    ordered = sorted(values)
    target = q * len(ordered)
    seen = 0
    for v in ordered:
        seen += 1
        if seen >= target:
            return v
    return ordered[-1]


class TestErrorBound:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-9, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_within_relative_error(self, values, q):
        sk = QuantileSketch(alpha=0.01)
        for v in values:
            sk.observe(v)
        est = sk.quantile(q)
        exact = exact_quantile(values, q)
        # Boundary values may round into the adjacent bucket; the
        # midpoint estimate still lands within alpha of the true value.
        assert abs(est - exact) <= sk.alpha * exact * (1 + 1e-9) + 1e-15

    def test_zero_and_negative_values_use_zero_bucket(self):
        sk = QuantileSketch()
        for v in (0.0, -1.0, 1e-13):
            sk.observe(v)
        assert sk.zero == 3 and sk.count == 3 and not sk.buckets
        assert sk.quantile(0.5) == 0.0

    def test_empty_sketch_quantile_is_zero(self):
        assert QuantileSketch().quantile(0.99) == 0.0

    def test_bad_alpha_and_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)


class TestMergeAndDelta:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=1e-9, max_value=1e3), min_size=1, max_size=50),
        st.lists(st.floats(min_value=1e-9, max_value=1e3), min_size=1, max_size=50),
    )
    def test_merge_equals_combined_stream(self, a, b):
        left, right, both = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for v in a:
            left.observe(v)
            both.observe(v)
        for v in b:
            right.observe(v)
            both.observe(v)
        left.merge(right)
        assert left.buckets == both.buckets
        assert left.zero == both.zero and left.count == both.count
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == both.quantile(q)

    def test_delta_isolates_observations_since_snapshot(self):
        sk = QuantileSketch()
        for v in (1.0, 2.0, 3.0):
            sk.observe(v)
        snap = sk.snapshot()
        for v in (10.0, 20.0):
            sk.observe(v)
        d = sk.delta(snap)
        fresh = QuantileSketch()
        for v in (10.0, 20.0):
            fresh.observe(v)
        assert d.buckets == fresh.buckets and d.count == 2
        assert d.quantile(0.5) == fresh.quantile(0.5)

    def test_alpha_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge_dict({"alpha": 0.05})


class TestSerialization:
    def test_roundtrip_preserves_quantiles(self):
        sk = QuantileSketch()
        for v in (0.0, 1e-6, 3e-6, 5e-4, 0.1):
            sk.observe(v)
        doc = json.loads(json.dumps(sk.to_dict()))  # through real JSON
        back = QuantileSketch.from_dict(doc)
        assert back.count == sk.count and back.zero == sk.zero
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert back.quantile(q) == sk.quantile(q)

    def test_fleet_merged_registries_equal_single_process(self):
        # Two "worker" registries over disjoint halves of one stream,
        # serialized and folded into a parent registry, must answer
        # percentile queries exactly like one registry that saw it all.
        values = [1e-6 * (i + 1) for i in range(40)]
        single = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for i, v in enumerate(values):
            single.observe("steal_latency", v, rank=0)
            workers[i % 2].observe("steal_latency", v, rank=0)
        parent = MetricsRegistry()
        for w, reg in enumerate(workers):
            parent.merge_dict(json.loads(json.dumps(reg.to_dict())), into_rank=w)
        merged = parent.histograms["steal_latency"].sketch
        base = single.histograms["steal_latency"].sketch
        assert merged.buckets == base.buckets and merged.count == base.count
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == base.quantile(q)


class TestRollingWindowsEdges:
    def test_empty_final_window_not_emitted(self):
        reg = MetricsRegistry()
        win = RollingWindows(reg, interval=1.0)
        win.roll(0.5)
        reg.observe("lock_wait", 1e-6)
        # Time passes through several empty intervals after the burst.
        win.roll(5.5)
        win.finalize(9.0)
        assert len(win.windows) == 1
        assert win.windows[0]["t0"] == 0.0 and win.windows[0]["t1"] == 1.0

    def test_observation_on_interval_boundary_lands_in_next_window(self):
        reg = MetricsRegistry()
        win = RollingWindows(reg, interval=1.0)
        win.roll(0.2)
        reg.observe("lock_wait", 1e-6)
        # roll(t) is called before recording an observation at time t:
        # the boundary observation belongs to [1, 2), not [0, 1).
        win.roll(1.0)
        reg.observe("lock_wait", 2e-6)
        win.finalize(2.0)
        counts = [w["histograms"]["lock_wait"]["count"] for w in win.windows]
        assert counts == [1, 1]
        assert [w["t0"] for w in win.windows] == [0.0, 1.0]

    def test_zero_duration_run_with_observations(self):
        reg = MetricsRegistry()
        win = RollingWindows(reg, interval=1.0)
        reg.observe("lock_wait", 1e-6)
        win.finalize(0.0)
        assert len(win.windows) == 1
        w = win.windows[0]
        assert w["t0"] == 0.0 and w["t1"] == 0.0
        assert w["histograms"]["lock_wait"]["count"] == 1

    def test_zero_duration_run_without_observations(self):
        reg = MetricsRegistry()
        win = RollingWindows(reg, interval=1.0)
        win.finalize(0.0)
        assert win.windows == []
        assert win.to_dict() == {"interval": 1.0, "series": []}

    def test_window_percentiles_use_sketch_resolution(self):
        # All observations inside one bucket-edge span: edge-resolution
        # percentiles would collapse to the same edge; the sketch keeps
        # them within 1% of the true values.
        reg = MetricsRegistry()
        win = RollingWindows(reg, interval=1.0)
        values = [100e-9, 101e-9, 140e-9]
        for v in values:
            reg.observe("lock_wait", v)
        win.finalize(1.0)
        h = win.windows[0]["histograms"]["lock_wait"]
        assert abs(h["p50"] - 101e-9) <= 0.01 * 101e-9 * 1.001
        assert abs(h["p99"] - 140e-9) <= 0.01 * 140e-9 * 1.001
        assert h["p50"] <= h["p95"] <= h["p99"]
