"""Figure 8: UTS on the Cray XT4 up to 512 processes — Scioto vs MPI.

Both implementations scale near-linearly on the XT4; Scioto holds a
modest edge from the elimination of explicit polling (§6.3).
"""

from __future__ import annotations

from repro.apps.uts import UTSParams, run_uts_mpi, run_uts_scioto
from repro.sim.machines import cray_xt4
from repro.util.records import Series, SweepResult

__all__ = ["run_figure8", "uts_tree_xt4"]


def uts_tree_xt4(scale: str) -> UTSParams:
    """~478k nodes at full scale so 512 ranks still have parallel slack.

    (The paper used a 4.1M-node tree; ~1k nodes per rank at 512 is the
    smallest instance where both implementations stay in their scaling
    regime within reasonable simulation wall time.)
    """
    if scale == "full":
        return UTSParams(b0=4.0, gen_mx=14, root_seed=17)
    return UTSParams(b0=4.0, gen_mx=10, root_seed=17)


def run_figure8(scale: str = "quick") -> SweepResult:
    params = uts_tree_xt4(scale)
    procs = [64, 128, 256, 512] if scale == "full" else [4, 8, 16]
    result = SweepResult(experiment="figure8")
    scioto = Series(label="UTS-Scioto", unit="Mnodes/s")
    mpi = Series(label="UTS-MPI", unit="Mnodes/s")
    for p in procs:
        mach = cray_xt4(p)
        scioto.add(p, run_uts_scioto(p, params, machine=mach, seed=1).throughput / 1e6)
        mpi.add(p, run_uts_mpi(p, params, machine=mach, seed=1).throughput / 1e6)
    result.series = [scioto, mpi]
    result.notes.append(f"geometric tree, gen_mx={params.gen_mx}, seed={params.root_seed}")
    return result
