"""Deterministic seed derivation for sharded exploration sweeps.

When an exploration campaign is split across fleet workers, every
schedule index must map to the *same* strategy seed no matter how the
indices were partitioned into jobs — otherwise ``--jobs 2`` would
explore a different schedule set than ``--jobs 1`` and the merged
failure reports would not be comparable.

The serial explorer derives seeds arithmetically (``base + index``),
which would also be partition-independent, but it couples neighbouring
indices: sweeping seeds 0..N and 1..N+1 overlap almost entirely.  The
fleet derives each seed from a SHA-256 digest keyed on
``(scenario, strategy, base_seed, index)`` — a *spawned* sequence in
the ``numpy.random.SeedSequence`` sense: statistically independent
streams per index, stable across processes and Python versions
(``hashlib`` is unaffected by hash randomization), and distinct per
scenario and strategy so campaign shards never reuse a stream.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed", "derive_seeds"]

#: Strategy seeds are taken from this many bytes of the digest.
_SEED_BYTES = 8


def derive_seed(scenario: str, strategy: str, base_seed: int, index: int) -> int:
    """The strategy seed for schedule ``index`` of a sharded campaign.

    A pure function of its arguments: any worker, in any process, on
    any partition of the index space, derives the same seed for the
    same schedule index.
    """
    key = f"{scenario}\x1f{strategy}\x1f{base_seed}\x1f{index}".encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def derive_seeds(
    scenario: str, strategy: str, base_seed: int, indices: range | list[int]
) -> list[int]:
    """Vectorized :func:`derive_seed` over ``indices``."""
    return [derive_seed(scenario, strategy, base_seed, i) for i in indices]
