"""Crash flight recorder: bounded rings, failure dumps, env attachment.

The flight recorder's contract is forensic: whatever kills a run — a
deadlock, an invariant violation, or a SIGKILL'd fleet worker — the
last moments of every rank must already be (or immediately get) on
disk, from a ring whose memory never grows with run length.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.flight import (
    ENV_FLIGHT_DIR,
    ENV_FLIGHT_FLUSH,
    FLIGHT_SCHEMA,
    FlightRecorder,
    flight_from_env,
    load_flight_dump,
    maybe_attach_flight,
)
from repro.obs.record import InstantRecord, Recorder, SpanRecord
from repro.sim.engine import Engine
from repro.util.errors import SimDeadlockError


def _span(rank, start, end, name="work"):
    return SpanRecord(
        rank=rank, name=name, category="task", start=start, end=end, depth=0
    )


class TestRing:
    def test_ring_keeps_only_the_last_per_rank(self, tmp_path):
        fl = FlightRecorder(tmp_path / "f.json", per_rank=4)
        for i in range(100):
            fl.record_span(_span(0, i * 1.0, i + 0.5, name=f"s{i}"))
        fl.record_instant(InstantRecord(1.0, 1, "tick", "probe", None))
        fl.dump("test")
        doc = load_flight_dump(tmp_path / "f.json")
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["records_seen"] == 101
        assert [e["name"] for e in doc["rings"]["0"]] == ["s96", "s97", "s98", "s99"]
        assert doc["rings"]["1"][0]["kind"] == "instant"

    def test_periodic_flush_writes_without_failure(self, tmp_path):
        fl = FlightRecorder(tmp_path / "f.json", per_rank=8, flush_every=10)
        for i in range(25):
            fl.record_span(_span(0, i, i + 1))
        # 25 records, flush every 10 -> two periodic dumps already on disk
        assert fl.dumps == 2
        assert load_flight_dump(tmp_path / "f.json")["reason"] == "periodic"

    def test_load_rejects_foreign_schema(self, tmp_path):
        (tmp_path / "x.json").write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError, match="unsupported flight schema"):
            load_flight_dump(tmp_path / "x.json")


class TestEngineFailureDump:
    def test_deadlock_dumps_recent_spans(self, tmp_path):
        engine = Engine(2)
        flight = FlightRecorder(tmp_path / "f.json", per_rank=16)
        Recorder.attach(engine, flight=flight)

        def main(proc):
            from repro.obs.record import span

            with span(proc, "step", "task"):
                proc.compute(1e-6)
            if proc.rank == 1:
                proc.park("never released")

        engine.spawn_all(main)
        with pytest.raises(SimDeadlockError):
            engine.run()
        doc = load_flight_dump(tmp_path / "f.json")
        assert doc["reason"] == "SimDeadlockError"
        assert "never released" in doc["error"]
        assert "0" in doc["rings"]  # both ranks ran at least one span
        assert doc["rings"]["0"][-1]["name"] == "step"

    def test_dump_never_masks_the_failure(self, tmp_path):
        """A broken flight recorder must not replace the real error."""
        engine = Engine(2)

        class Broken(FlightRecorder):
            def dump(self, *a, **k):
                raise OSError("disk full")

        Recorder.attach(engine, flight=Broken(tmp_path / "f.json"))
        engine.spawn_all(lambda proc: proc.park("stuck") if proc.rank else None)
        with pytest.raises(SimDeadlockError):  # not OSError
            engine.run()


class TestInvariantFailureDump:
    def test_check_runner_dumps_on_violation(self, tmp_path, monkeypatch):
        from repro.check.invariants import Violation
        from repro.check.runner import run_once
        from repro.check.scenarios import make_scenario

        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))

        class AlwaysFails:
            def check(self, events, ctx):
                return [Violation("test_invariant", "planted failure")]

        scenario = make_scenario("queue")
        monkeypatch.setattr(scenario, "checkers", lambda: [AlwaysFails()])
        out = run_once(scenario, None)
        assert out.violations
        dumps = list(tmp_path.glob("flight-check-queue-*.json"))
        assert len(dumps) == 1
        doc = load_flight_dump(dumps[0])
        assert doc["reason"] == "invariant-failure"
        assert "test_invariant" in doc["error"]


class TestEnvAttachment:
    def test_no_env_no_flight(self, monkeypatch):
        monkeypatch.delenv(ENV_FLIGHT_DIR, raising=False)
        assert flight_from_env() is None
        assert maybe_attach_flight(Engine(1)) is None

    def test_env_attaches_storage_free_recorder(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        engine = Engine(2)
        flight = maybe_attach_flight(engine, context="unit/test run")
        assert flight is not None
        # context is sanitized into the filename
        assert "unit-test-run" in flight.path.name
        rec = Recorder.of(engine)
        assert rec is not None and rec.flight is flight
        assert rec.spans == []  # NullSink: the ring is the only retention

    def test_env_reuses_existing_recorder(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        engine = Engine(2)
        rec = Recorder.attach(engine)
        flight = maybe_attach_flight(engine)
        assert Recorder.of(engine) is rec and rec.flight is flight

    def test_flush_cadence_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        monkeypatch.setenv(ENV_FLIGHT_FLUSH, "7")
        assert flight_from_env().flush_every == 7
        # explicit argument wins over the environment
        assert flight_from_env(flush_every=3).flush_every == 3

    def test_flight_does_not_perturb_the_run(self, tmp_path, monkeypatch):
        from repro.obs.scenarios import fingerprint, run_target

        base = fingerprint(run_target("steals", record=False))
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        flight = flight_from_env(context="fp")
        with_flight = run_target("steals", flight=flight)
        assert fingerprint(with_flight) == base
        assert flight.records_seen > 0


class TestCrashReportDoc:
    def test_dump_is_valid_json_with_context(self, tmp_path):
        fl = FlightRecorder(tmp_path / "f.json")
        fl.context = {"context": "obs-queue"}
        fl.record_span(_span(3, 0.0, 1.0))
        path = fl.dump("worker-crash", error="SIGKILL", context={"job": "obs/queue"})
        doc = json.loads(path.read_text())
        assert doc["context"] == {"context": "obs-queue", "job": "obs/queue"}
        assert doc["error"] == "SIGKILL"
        assert sorted(doc["rings"]) == ["3"]
