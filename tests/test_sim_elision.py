"""The sync-elision fast path must be semantically invisible.

An elided sync skips the context switch when the syncing process would
be resumed immediately anyway.  These tests pin down the contract: the
event stream, clocks, payloads, and limits behave exactly as if every
sync had gone through the full handoff — and the fast path disables
itself under exploring strategies, whose decision points must see every
event.

The reference for "as if every sync had switched" is ``_FifoExplorer``:
an exploring strategy that always picks the first (heap-order)
candidate.  It reproduces the engine's default schedule exactly, but —
being an exploring strategy — forces elision off and the full
materialize-candidates path on, so any divergence between a plain run
and a ``_FifoExplorer`` run is an elision (or compaction) bug.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, SchedulingStrategy, run_spmd
from repro.util.errors import SimLimitError


class _FifoExplorer(SchedulingStrategy):
    """Exploring strategy that reproduces the default heap order."""

    explores = True

    def __init__(self):
        self.choices = 0

    def choose(self, candidates):
        self.choices += 1
        return 0


def _count_switches(engine):
    """Wrap the engine's backend to count real context switches."""
    counts = {"switch": 0}
    real = engine.backend.switch

    def counting_switch(src, dst):
        counts["switch"] += 1
        real(src, dst)

    engine.backend.switch = counting_switch
    return counts


def _run(nprocs, main, *args, strategy=None, **kw):
    eng = Engine(nprocs, strategy=strategy, **kw)
    eng.spawn_all(main, *args)
    return eng, eng.run()


# --------------------------------------------------------------------- #
# The fast path fires, and never when it must not
# --------------------------------------------------------------------- #
def test_lone_runner_syncs_are_elided():
    def main(proc):
        for _ in range(50):
            proc.compute(1e-6)
            proc.sync()
        return proc.now

    eng, result = _run(1, main)
    # 1 initial resume + 50 syncs, every sync elided.
    assert result.events == 51


def test_elided_syncs_count_as_events():
    def main(proc):
        for _ in range(10):
            proc.sync()

    _, solo = _run(1, main)
    exploring = _FifoExplorer()
    _, full = _run(1, main, strategy=exploring)
    assert solo.events == full.events  # elided or not, same event stream


def test_no_switches_while_draining_alone():
    eng = Engine(1)

    def main(proc):
        for _ in range(25):
            proc.compute(1e-6)
            proc.sync()

    eng.spawn_all(main)
    counts = _count_switches(eng)
    eng.run()
    # One switch in (engine -> proc); the exit is exit_to, not switch.
    assert counts["switch"] == 1


def test_elision_respects_other_runnable_at_same_time():
    """A same-time entry from another rank must still run in seq order."""
    order = []

    def main(proc):
        for i in range(3):
            proc.sync()  # both ranks at t=0 throughout
            order.append((proc.rank, i))

    _, plain = _run(2, main)
    plain_order = list(order)
    order.clear()
    _, explored = _run(2, main, strategy=_FifoExplorer())
    assert order == plain_order
    assert explored.events == plain.events


def test_elision_disabled_when_strategy_explores():
    strategy = _FifoExplorer()
    eng = Engine(2, strategy=strategy)

    def main(proc):
        proc.compute(1e-6)
        proc.sync()

    eng.spawn_all(main)
    eng.run()
    assert eng._elide is False
    assert strategy.choices > 0  # decision points actually reached


def test_elision_enabled_for_non_exploring_strategy():
    eng = Engine(1, strategy=SchedulingStrategy())
    eng.spawn_all(lambda proc: proc.sync())
    eng.run()
    assert eng._elide is True


# --------------------------------------------------------------------- #
# Equivalence against the full-handoff schedule
# --------------------------------------------------------------------- #
def _staggered(proc):
    total = 0.0
    for i in range(20):
        proc.compute(1e-6 * ((proc.rank + i) % 3 + 1))
        proc.sync()
        total += proc.now
    return (proc.rank, round(total, 12), round(proc.now, 12))


def test_staggered_clocks_match_explored_schedule():
    _, plain = _run(4, _staggered)
    _, full = _run(4, _staggered, strategy=_FifoExplorer())
    assert plain.returns == full.returns
    assert plain.finish_times == full.finish_times
    assert plain.events == full.events


def test_park_until_timeout_matches_explored_schedule():
    def main(proc):
        if proc.rank == 0:
            payload = proc.park_until(5e-6, where="poll")
            proc.sync()
            return (payload, proc.now)
        proc.compute(1e-6)
        proc.sync()
        return proc.now

    _, plain = _run(2, main)
    _, full = _run(2, main, strategy=_FifoExplorer())
    assert plain.returns == full.returns
    assert plain.returns[0] == (None, 5e-6)  # timed out, clock advanced


def test_park_until_woken_early_matches_explored_schedule():
    def main(proc):
        if proc.rank == 0:
            payload = proc.park_until(1.0, where="poll")
            return (payload, proc.now)
        proc.compute(2e-6)
        proc.sync()
        proc.engine.wake(proc.engine.procs[0], proc.now, "posted")
        proc.sync()
        return proc.now

    _, plain = _run(2, main)
    _, full = _run(2, main, strategy=_FifoExplorer())
    assert plain.returns == full.returns
    assert plain.returns[0] == ("posted", pytest.approx(2e-6))
    # The stale timeout entry must not produce a second resume.
    assert plain.events == full.events


def test_lone_runner_park_until_self_resume():
    """A lone park_until resumes via its own timeout entry (the
    self-resume path: dispatch returns without a backend switch)."""

    def main(proc):
        t = []
        for i in range(5):
            proc.park_until((i + 1) * 1e-6, where="tick")
            t.append(proc.now)
        return t

    _, result = _run(1, main)
    assert result.returns[0] == pytest.approx([1e-6, 2e-6, 3e-6, 4e-6, 5e-6])


# --------------------------------------------------------------------- #
# Limits still enforced on the fast path
# --------------------------------------------------------------------- #
def test_max_events_enforced_for_elided_syncs():
    def main(proc):
        while True:
            proc.sync()

    with pytest.raises(SimLimitError, match="max_events"):
        run_spmd(1, main, max_events=100)


def test_max_time_enforced_for_elided_syncs():
    def main(proc):
        while True:
            proc.advance(1.0)
            proc.sync()

    with pytest.raises(SimLimitError, match="max_time"):
        run_spmd(1, main, max_time=10.0)


# --------------------------------------------------------------------- #
# Exploring-path compaction keeps the heap honest
# --------------------------------------------------------------------- #
def test_compaction_under_heavy_staling():
    """park_until + wake churn leaves many stale entries; the exploring
    scan must compact them away without perturbing the schedule."""

    def main(proc):
        if proc.rank == 0:
            for _ in range(60):
                proc.park_until(proc.now + 1.0, where="poll")
            return round(proc.now, 9)
        for i in range(60):
            proc.compute(1e-6)
            proc.sync()
            proc.engine.wake(proc.engine.procs[0], proc.now, i)
            proc.sync()
        return round(proc.now, 9)

    _, plain = _run(2, main)
    _, full = _run(2, main, strategy=_FifoExplorer())
    assert plain.returns == full.returns
    assert plain.events == full.events
