"""Edge cases for Global Arrays: tiny arrays, many ranks, empty patches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ga import BlockDistribution, GlobalArray
from repro.sim.engine import Engine


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=1_000_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestEmptyPatches:
    def test_more_ranks_than_elements(self):
        """A 2x2 array over 16 ranks leaves most patches empty but must
        still cover every element exactly once."""
        dist = BlockDistribution((2, 2), 16)
        covered = np.zeros((2, 2), dtype=int)
        empties = 0
        for r in range(16):
            lo, hi = dist.patch(r)
            if any(h <= l for l, h in zip(lo, hi)):
                empties += 1
                continue
            covered[lo[0] : hi[0], lo[1] : hi[1]] += 1
        assert (covered == 1).all()
        assert empties == 12

    def test_ga_ops_with_empty_patches(self):
        def main(proc):
            ga = GlobalArray.create(proc, "tiny", (2, 2))
            if proc.rank == 0:
                ga.put(proc, (0, 0), (2, 2), np.arange(4.0).reshape(2, 2))
            ga.sync(proc)
            return ga.get(proc, (0, 0), (2, 2)).sum()

        _, res = _run(9, main)
        assert res.returns == [6.0] * 9

    def test_snapshot_with_empty_patches(self):
        def main(proc):
            ga = GlobalArray.create(proc, "tiny", (3,))
            if proc.rank == 0:
                ga.put(proc, (0,), (3,), np.array([1.0, 2.0, 3.0]))
            ga.sync(proc)
            proc.engine.state["obj"] = ga

        eng, _ = _run(8, main)
        assert np.array_equal(eng.state["obj"].unsafe_snapshot(), [1.0, 2.0, 3.0])


class TestSingleRank:
    def test_all_ops_local(self):
        def main(proc):
            ga = GlobalArray.create(proc, "solo", (5, 5))
            ga.put(proc, (1, 1), (4, 4), np.ones((3, 3)))
            ga.acc(proc, (0, 0), (5, 5), np.ones((5, 5)), alpha=0.5)
            out = ga.read_full(proc)
            return out.sum()

        _, res = _run(1, main)
        assert res.returns[0] == pytest.approx(9 + 0.5 * 25)


class TestSinglePointOps:
    def test_one_element_boxes(self):
        def main(proc):
            ga = GlobalArray.create(proc, "pt", (6, 6))
            ga.sync(proc)
            if proc.rank == 0:
                for i in range(6):
                    ga.put(proc, (i, i), (i + 1, i + 1), np.array([[float(i)]]))
            ga.sync(proc)
            return [float(ga.get(proc, (i, i), (i + 1, i + 1))[0, 0]) for i in range(6)]

        _, res = _run(4, main)
        assert res.returns[1] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_locate_every_corner(self):
        dist = BlockDistribution((7, 5), 6)
        for idx in [(0, 0), (6, 0), (0, 4), (6, 4), (3, 2)]:
            r = dist.locate(idx)
            lo, hi = dist.patch(r)
            assert all(l <= x < h for x, l, h in zip(idx, lo, hi))


class TestDtype:
    def test_integer_arrays(self):
        def main(proc):
            ga = GlobalArray.create(proc, "ints", (4, 4), dtype=np.int64)
            if proc.rank == 0:
                ga.put(proc, (0, 0), (4, 4), np.arange(16).reshape(4, 4))
            ga.sync(proc)
            out = ga.read_full(proc)
            assert out.dtype == np.int64
            return int(out.sum())

        _, res = _run(2, main)
        assert res.returns == [120, 120]
