"""UTS over the MPI two-sided work-stealing baseline (the paper's UTS-MPI)."""

from __future__ import annotations

from repro.apps.uts.scioto_uts import UTS_BODY_BYTES, UTSRunResult
from repro.apps.uts.tree import TreeStats, UTSParams, children_of, root_node
from repro.baselines.mpi_ws import MpiWorkStealing
from repro.mpi import Mpi
from repro.armci.runtime import Armci
from repro.sim.engine import Engine
from repro.sim.machines import MachineSpec

__all__ = ["run_uts_mpi"]


def _uts_mpi_main(proc, params: UTSParams, chunk: int, poll_interval: int):
    local = TreeStats()

    def process_node(p, node, push):
        p.compute(p.machine.cpu_reference)
        local.nodes += 1
        local.max_depth = max(local.max_depth, node.depth)
        kids = children_of(params, node)
        if not kids:
            local.leaves += 1
        for child in kids:
            push(child)

    ws = MpiWorkStealing(
        proc,
        process_node,
        item_bytes=UTS_BODY_BYTES,
        chunk=chunk,
        poll_interval=poll_interval,
    )
    mpi = Mpi.attach(proc.engine)
    mpi.barrier(proc)
    t0 = proc.now
    initial = [root_node(params)] if proc.rank == 0 else []
    ws.run(initial)
    # reductions reuse the ARMCI collective machinery (same cost model as
    # an MPI allreduce for our purposes)
    armci = Armci.attach(proc.engine)
    total: TreeStats = armci.allreduce(proc, local, TreeStats.merge)
    elapsed = armci.allreduce(proc, proc.now - t0, max)
    return (total, elapsed, ws)


def run_uts_mpi(
    nprocs: int,
    params: UTSParams,
    machine: MachineSpec | None = None,
    seed: int = 0,
    chunk: int = 10,
    poll_interval: int = 4,
    max_events: int | None = None,
) -> UTSRunResult:
    """Run UTS with the MPI work-stealing baseline on ``nprocs`` ranks."""
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=max_events)
    eng.spawn_all(_uts_mpi_main, params, chunk, poll_interval)
    sim = eng.run()
    total, elapsed, _ = sim.returns[0]
    return UTSRunResult(
        stats=total,
        elapsed=elapsed,
        throughput=total.nodes / elapsed if elapsed > 0 else 0.0,
        nprocs=nprocs,
        per_rank=[],
        sim=sim,
    )
