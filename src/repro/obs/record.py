"""The span recorder: nested virtual-time spans plus the metrics registry.

A :class:`Recorder` attaches to an engine exactly like the tracer and
the race detector: ``Recorder.attach(engine)`` before ``engine.run()``,
``Recorder.of(engine)`` afterwards.  The runtime layers call the free
functions in this module (:func:`span`, :func:`observe`, :func:`count`,
:func:`sample`, :func:`instant`) at their interesting points; when no
recorder is attached each call costs a single dict probe and records
nothing, so instrumented code stays safe on hot paths.

Recording is an *observer* of virtual time: hooks only ever read
``proc.now`` — they never advance a clock, yield to the engine, or touch
an RNG — so enabling it leaves the deterministic schedule, all virtual
timings, and all `Counters` totals bit-for-bit unchanged (tested, and
checkable with ``python -m repro.obs verify``).

Span nesting is per rank: spans opened while another span of the same
rank is still open become its children (``depth``/``parent``), which is
what lets the Chrome-trace exporter draw one stacked track per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc

__all__ = [
    "Recorder",
    "SpanRecord",
    "InstantRecord",
    "span",
    "observe",
    "count",
    "sample",
    "instant",
]

_KEY = "obs"


@dataclass
class SpanRecord:
    """One (possibly still open) recorded span."""

    rank: int
    name: str
    category: str
    start: float
    end: float | None = None
    depth: int = 0
    parent: int | None = None  #: index of the enclosing span, or None
    detail: Any = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class InstantRecord:
    """A zero-duration marker event (e.g. a dirty mark landing)."""

    time: float
    rank: int
    name: str
    category: str
    detail: Any = None


class _NullSpan:
    """Shared no-op context manager returned when recording is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that closes its span at the rank's current time."""

    __slots__ = ("_rec", "_proc", "_index")

    def __init__(self, rec: "Recorder", proc: "Proc", index: int | None) -> None:
        self._rec = rec
        self._proc = proc
        self._index = index

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._rec._close(self._proc, self._index)
        return False


class Recorder:
    """Engine-wide span + metrics recorder (attach-based, off by default)."""

    _KEY = _KEY

    def __init__(self, engine: "Engine", capacity: int = 2_000_000) -> None:
        self.engine = engine
        self.capacity = capacity
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        # per-rank stacks of open span indexes (None = dropped placeholder)
        self._stacks: list[list[int | None]] = [[] for _ in range(engine.nprocs)]

    @classmethod
    def attach(cls, engine: "Engine", capacity: int = 2_000_000) -> "Recorder":
        """Enable recording on ``engine`` (idempotent)."""
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine, capacity)
            engine.state[cls._KEY] = inst
        return inst

    @classmethod
    def of(cls, engine: "Engine") -> "Recorder | None":
        """The engine's recorder, or None if recording is off."""
        return engine.state.get(cls._KEY)

    # ------------------------------------------------------------------ #
    # Span API
    # ------------------------------------------------------------------ #
    def span(self, proc: "Proc", name: str, category: str, detail: Any = None) -> _OpenSpan:
        """Open a span on ``proc``'s rank; close it by exiting the context."""
        stack = self._stacks[proc.rank]
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            stack.append(None)
            return _OpenSpan(self, proc, None)
        parent = next((i for i in reversed(stack) if i is not None), None)
        index = len(self.spans)
        self.spans.append(
            SpanRecord(
                rank=proc.rank,
                name=name,
                category=category,
                start=proc.now,
                depth=len(stack),
                parent=parent,
                detail=detail,
            )
        )
        stack.append(index)
        return _OpenSpan(self, proc, index)

    def _close(self, proc: "Proc", index: int | None) -> None:
        stack = self._stacks[proc.rank]
        if not stack or stack[-1] != index:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span close out of order on rank {proc.rank}: "
                f"closing {index}, top of stack is {stack[-1] if stack else None}"
            )
        stack.pop()
        if index is not None:
            self.spans[index].end = proc.now

    def complete_span(
        self,
        proc: "Proc",
        name: str,
        category: str,
        start: float,
        detail: Any = None,
    ) -> None:
        """Record an already-finished span from ``start`` to ``proc.now``.

        For protocol intervals that do not nest with the call stack —
        e.g. a termination wave (launched in one scheduler iteration,
        completed in a later one) or a contended lock wait.  Recorded at
        depth 0; it still lands on the rank's track in the exports.
        """
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(
            SpanRecord(
                rank=proc.rank,
                name=name,
                category=category,
                start=start,
                end=proc.now,
                detail=detail,
            )
        )

    def instant_event(
        self, proc: "Proc", name: str, category: str, detail: Any = None
    ) -> None:
        """Record a zero-duration marker at the rank's current time."""
        if len(self.instants) >= self.capacity:
            self.dropped += 1
            return
        self.instants.append(
            InstantRecord(proc.now, proc.rank, name, category, detail)
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def finished_spans(self) -> list[SpanRecord]:
        """All spans that have been closed (open ones are excluded)."""
        return [s for s in self.spans if s.end is not None]

    def by_category(self, category: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.category == category]


# ---------------------------------------------------------------------- #
# Free-function hooks (zero-cost when no recorder is attached)
# ---------------------------------------------------------------------- #
def span(proc: "Proc", name: str, category: str = "runtime", detail: Any = None):
    """Context manager recording a span on ``proc``'s rank (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is None:
        return _NULL_SPAN
    return rec.span(proc, name, category, detail)


def observe(proc: "Proc", name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.metrics.observe(name, value, rank=proc.rank)


def count(proc: "Proc", name: str, amount: float = 1.0) -> None:
    """Increment obs counter ``name`` for ``proc``'s rank (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.metrics.add(proc.rank, name, amount)


def sample(proc: "Proc", name: str, value: float) -> None:
    """Set gauge ``name`` on ``proc``'s rank to ``value`` (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.metrics.sample(name, proc.rank, value)


def instant(proc: "Proc", name: str, category: str = "runtime", detail: Any = None) -> None:
    """Record a zero-duration marker event (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.instant_event(proc, name, category, detail)
