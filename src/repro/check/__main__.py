"""CLI for the schedule-exploration model checker.

Examples::

    python -m repro.check --target queue --schedules 500
    python -m repro.check --target all --schedules 100 --strategy pct
    python -m repro.check --target queue --mutate unlocked_split
    python -m repro.check --replay scioto-check/queue-random-s17.trace.json

    # shard a campaign across worker processes (see docs/fleet.md);
    # the failing-schedule set is identical for any --jobs N
    python -m repro.check explore --target all --schedules 200 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.check.mutations import MUTATIONS
from repro.check.runner import ExploreResult, explore, replay
from repro.check.scenarios import SCENARIOS
from repro.check.strategies import STRATEGIES
from repro.check.traces import DecisionTrace


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Explore adversarial schedules of the Scioto protocols "
        "and check safety invariants on every run.",
    )
    p.add_argument(
        "--target",
        default="queue",
        choices=sorted(SCENARIOS) + ["all"],
        help="protocol scenario to check (default: queue)",
    )
    p.add_argument(
        "--schedules",
        type=int,
        default=500,
        help="number of interleavings to explore per target (default: 500)",
    )
    p.add_argument(
        "--strategy",
        default="random",
        choices=sorted(STRATEGIES),
        help="exploration strategy (default: random)",
    )
    p.add_argument("--seed", type=int, default=0, help="base strategy seed")
    p.add_argument(
        "--engine-seed", type=int, default=0, help="workload (engine) seed"
    )
    p.add_argument(
        "--mutate",
        default="none",
        choices=sorted(MUTATIONS),
        help="apply an intentional protocol bug (checker self-test)",
    )
    p.add_argument(
        "--out",
        default="scioto-check",
        help="directory for failure traces (default: scioto-check/)",
    )
    p.add_argument(
        "--keep-going",
        action="store_true",
        help="keep exploring after a failure, collecting distinct signatures",
    )
    p.add_argument(
        "--no-minimize", action="store_true", help="skip trace minimization"
    )
    p.add_argument(
        "--replay",
        metavar="TRACE",
        help="replay a persisted trace file instead of exploring",
    )
    return p


def _print_result(res: ExploreResult, elapsed: float) -> None:
    status = "OK" if res.ok else "FAIL"
    print(
        f"[{status}] target={res.target} strategy={res.strategy} "
        f"schedules={res.schedules_run} events={res.events_total} "
        f"({elapsed:.1f}s)"
    )
    for f in res.failures:
        print(f"  schedule #{f.schedule_index} (strategy seed {f.strategy_seed}):")
        print(f"    failure:   {f.outcome.describe()}")
        print(f"    trace:     {f.trace_path} ({f.decisions_total} decisions)")
        print(f"    replay:    {'reproduces' if f.replay_confirmed else 'DIVERGED'}")
        if f.minimized_path is not None:
            print(
                f"    minimized: {f.minimized_path} "
                f"({f.decisions_minimized} decisions)"
            )


def _explore_fleet(argv: list[str]) -> int:
    """``repro.check explore``: the fleet-sharded campaign runner."""
    # Imported lazily: the fleet layer builds on repro.check, not the
    # other way round, so the plain CLI stays import-light.
    from repro.fleet.__main__ import (
        add_explore_arguments,
        explore_main,
        normalize_explore_targets,
    )

    p = argparse.ArgumentParser(
        prog="python -m repro.check explore",
        description="Explore schedules sharded across fleet workers "
        "(python -m repro.fleet explore).",
    )
    add_explore_arguments(p)
    args = p.parse_args(argv)
    normalize_explore_targets(args)
    return explore_main(args)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explore":
        return _explore_fleet(argv[1:])
    args = _parser().parse_args(argv)

    if args.replay:
        trace = DecisionTrace.load(args.replay)
        outcome = replay(trace)
        same = outcome.signature_json == trace.signature
        print(f"replaying {args.replay}")
        print(f"  recorded failure: {trace.failure}")
        print(f"  replay outcome:   {outcome.describe()}")
        print(f"  signature match:  {'yes' if same else 'NO'}")
        return 0 if same else 1

    targets = sorted(SCENARIOS) if args.target == "all" else [args.target]
    mutation = None if args.mutate == "none" else args.mutate
    exit_code = 0
    for target in targets:
        t0 = time.perf_counter()  # host-side timing # repro: lint-disable=RPR002
        res = explore(
            target,
            schedules=args.schedules,
            strategy_name=args.strategy,
            seed=args.seed,
            engine_seed=args.engine_seed,
            mutation=mutation,
            out_dir=args.out,
            stop_on_failure=not args.keep_going,
            minimize=not args.no_minimize,
        )
        _print_result(res, time.perf_counter() - t0)  # repro: lint-disable=RPR002
        if not res.ok:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
