"""Table 1: task-queue operation microbenchmarks (cluster + Cray XT4)."""

from repro.bench.harness import scale
from repro.bench.report import render
from repro.bench.table1 import run_table1


def test_table1(benchmark):
    result = benchmark.pedantic(run_table1, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, x_label="op", fmt="{:.3f}"))
    # measured values must sit within 40% of the paper's on every op
    for machine in ("cluster", "cray-xt4"):
        measured = result.get(f"{machine}-measured")
        paper = result.get(f"{machine}-paper")
        for x in measured.xs:
            m, p = measured.y_at(x), paper.y_at(x)
            assert 0.6 * p <= m <= 1.4 * p, (machine, x, m, p)
