"""Named UTS instances, scaled from the benchmark's canonical T-series.

The UTS distribution defines sample trees T1-T5 with 4M-300M nodes; at
simulator speed those are impractical, so this module provides
*shape-preserving* scaled instances: same tree type and branching
character, reduced depth.  Sizes are exact (the trees are deterministic)
and verified by test.

========  ==========  ========  ===============================
name      type        nodes     character
========  ==========  ========  ===============================
tiny      geometric   2,336     unit-test sized
small     geometric   30,929    quick benchmarks
medium    geometric   122,415   Figure 7 full scale
large     geometric   477,673   Figure 8 full scale
binomial  binomial    86,066    depth 155, extreme subtree variance
========  ==========  ========  ===============================
"""

from __future__ import annotations

from repro.apps.uts.tree import UTSParams

__all__ = ["PRESETS", "preset", "EXPECTED_NODES"]

PRESETS: dict[str, UTSParams] = {
    "tiny": UTSParams(tree_type="geometric", b0=4.0, gen_mx=8, root_seed=6),
    "small": UTSParams(tree_type="geometric", b0=4.0, gen_mx=10, root_seed=17),
    "medium": UTSParams(tree_type="geometric", b0=4.0, gen_mx=12, root_seed=17),
    "large": UTSParams(tree_type="geometric", b0=4.0, gen_mx=14, root_seed=17),
    "binomial": UTSParams(tree_type="binomial", b0=2000, q=0.195, m=5, root_seed=42),
}

#: Exact node counts of the presets (deterministic; asserted in tests).
EXPECTED_NODES = {
    "tiny": 2_336,
    "small": 30_929,
    "medium": 122_415,
    "large": 477_673,
    "binomial": 86_066,
}


def preset(name: str) -> UTSParams:
    """Look up a named UTS instance."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown UTS preset {name!r}; choose from {sorted(PRESETS)}") from None
