"""``repro.obs`` — unified observability: spans, metrics, timeline export.

The paper's whole evaluation (§6) is about *where time goes* — task
execution vs. queue management vs. stealing vs. termination.  This
package is the instrumentation that answers that question for the
simulated runtime:

* **Spans** (:mod:`repro.obs.record`): nested virtual-time intervals
  recorded by the runtime layers — task execution, steal attempts,
  split-queue moves, lock waits, termination waves, one-sided
  operations.  Attach-based and zero-cost when off, like the tracer
  and the race detector; recording never perturbs the deterministic
  schedule.
* **Metrics** (:mod:`repro.obs.metrics`): counters (the long-standing
  ``Counters`` map is now a facade over :class:`CounterFamily`),
  gauges, and fixed-bucket histograms (steal latency, stolen chunk
  size, queue occupancy, wave round-trip, lock hold/wait).
* **Events** (:mod:`repro.obs.tracing`): the structured event tracer,
  re-homed here from ``repro.sim.tracing`` (old path is a deprecated
  shim).
* **Exporters** (:mod:`repro.obs.export`): Chrome ``trace_event`` JSON
  (open in Perfetto), flat metrics JSON, ASCII per-rank timeline.
* **Analysis** (:mod:`repro.obs.analyze`): post-hoc summaries and
  critical-idle gap hunting over exported traces.

CLI::

    python -m repro.obs run uts-small --trace out.json --metrics m.json
    python -m repro.obs summarize out.json
    python -m repro.obs critical-idle out.json --top 10
    python -m repro.obs verify          # recording-on == recording-off

See ``docs/observability.md`` for the full API and cost model.
"""

from repro.obs.analyze import IdleGap, critical_idle, load_chrome_trace, summarize
from repro.obs.export import (
    METRICS_SCHEMA,
    ascii_timeline,
    chrome_trace,
    metrics_dict,
    self_times,
    summary_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.record import (
    InstantRecord,
    Recorder,
    SpanRecord,
    count,
    instant,
    observe,
    sample,
    span,
)
from repro.obs.tracing import TraceEvent, Tracer, trace

__all__ = [
    "Recorder",
    "SpanRecord",
    "InstantRecord",
    "span",
    "observe",
    "count",
    "sample",
    "instant",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TraceEvent",
    "trace",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dict",
    "write_metrics_json",
    "ascii_timeline",
    "summary_table",
    "self_times",
    "METRICS_SCHEMA",
    "load_chrome_trace",
    "summarize",
    "critical_idle",
    "IdleGap",
]
