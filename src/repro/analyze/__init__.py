"""Static and dynamic analyses for the Scioto runtime (``repro.analyze``).

Two complementary prongs, both deterministic (unlike the schedule
*search* in :mod:`repro.check`, these flag violations on every run):

* :mod:`repro.analyze.race` — a happens-before data-race detector for
  the simulated PGAS machine: per-rank vector clocks, synchronization
  edges derived from mutexes, barriers, message delivery, remote
  atomics and fences, and access hooks on every ARMCI shared region
  (queue descriptors, termination flags, GA patches).
* :mod:`repro.analyze.lint` — an AST lint framework with
  Scioto-specific rules (RPR001–RPR005) enforcing the locking, fencing
  and determinism discipline the protocols rely on.

Run both from the command line::

    python -m repro.analyze race --target all
    python -m repro.analyze lint src/repro
"""

from repro.analyze.race import Access, Race, RaceDetector
from repro.analyze.vectorclock import VectorClock

__all__ = ["Access", "Race", "RaceDetector", "VectorClock"]
