"""Task collections: the global view of a distributed set of tasks (§2-§3).

A :class:`TaskCollection` is created collectively.  Each rank holds a
handle sharing engine-level state: one :class:`SplitQueue` per rank, the
callback and common-local-object registries, and per-phase termination
detectors.  The paper's API maps directly:

====================  =============================================
paper                 here
====================  =============================================
``tc_create``         :meth:`TaskCollection.create`
``tc_destroy``        :meth:`TaskCollection.destroy`
``tc_add``            :meth:`TaskCollection.add`
``tc_process``        :meth:`TaskCollection.process`
``tc_reset``          :meth:`TaskCollection.reset`
``tc_register``       :meth:`TaskCollection.register`
CLO registration      :meth:`TaskCollection.register_clo` / :meth:`clo`
====================  =============================================
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import Any

from repro.armci.runtime import Armci
from repro.core.config import SciotoConfig
from repro.core.queue import SplitQueue
from repro.core.task import Task
from repro.core.termination import TerminationDetector
from repro.sim.engine import Engine, Proc, blocking_method
from repro.sim.counters import Counters
from repro.obs.tracing import trace
from repro.util.errors import TaskCollectionError

__all__ = ["TaskCollection"]


class _SharedTC:
    """Engine-level state shared by all ranks' handles to one collection."""

    def __init__(
        self,
        engine: Engine,
        cid: int,
        task_size: int,
        max_tasks: int,
        config: SciotoConfig,
    ) -> None:
        self.engine = engine
        self.cid = cid
        self.task_size = task_size
        self.max_tasks = max_tasks
        self.config = config
        self.counters = Counters()
        self.queues = [
            SplitQueue(
                engine,
                rank,
                max_tasks,
                task_size,
                config,
                self.counters,
                name=f"tc{cid}",
            )
            for rank in range(engine.nprocs)
        ]
        # per-rank callback tables; handle h on any rank dispatches
        # callbacks[rank][h] (collective registration keeps them aligned)
        self.callbacks: list[list[Callable[..., None]]] = [[] for _ in range(engine.nprocs)]
        self.clos: list[list[Any]] = [[] for _ in range(engine.nprocs)]
        self.process_counts = [0] * engine.nprocs
        self.detectors: dict[int, list[TerminationDetector]] = {}
        # rank -> the rank's active detector while inside tc_process, else None
        self.active: list[TerminationDetector | None] = [None] * engine.nprocs
        self.destroyed = False

    def detectors_for(self, generation: int) -> list[TerminationDetector]:
        """All ranks' detectors for phase ``generation`` (created once)."""
        dets = self.detectors.get(generation)
        if dets is None:
            dets: list[TerminationDetector] = []
            for rank in range(self.engine.nprocs):
                dets.append(
                    TerminationDetector(
                        self.engine,
                        rank,
                        tag=f"td:tc{self.cid}:g{generation}",
                        peers=dets,
                        optimize=self.config.termination_opt,
                        counters=self.counters,
                    )
                )
            self.detectors[generation] = dets
        return dets


class TaskCollection:
    """One rank's handle to a shared collection of task objects."""

    _KEY = "scioto"

    def __init__(self, proc: Proc, shared: _SharedTC) -> None:
        self.proc = proc
        self._shared = shared

    # ------------------------------------------------------------------ #
    # Lifecycle (collective)
    # ------------------------------------------------------------------ #
    create = classmethod(blocking_method("co_create"))

    @classmethod
    def co_create(
        cls,
        proc: Proc,
        task_size: int = 1024,
        chunk_size: int | None = None,
        max_tasks: int = 16384,
        config: SciotoConfig | None = None,
    ):
        """Collectively create a task collection (``tc_create``).

        Args:
            proc: The calling rank's simulated process.
            task_size: Maximum task body size in bytes (storage/cost unit).
            chunk_size: Steal granularity in tasks; overrides the config.
            max_tasks: Queue capacity per process.
            config: Runtime configuration; defaults to :class:`SciotoConfig`.
        """
        cfg = config if config is not None else SciotoConfig()
        if chunk_size is not None:
            cfg = dataclasses.replace(cfg, chunk_size=chunk_size)
        if task_size < 0 or max_tasks < 1:
            raise ValueError("task_size must be >= 0 and max_tasks >= 1")
        registry = proc.engine.state.setdefault(
            cls._KEY, {"counts": [0] * proc.nprocs, "shared": []}
        )
        idx = registry["counts"][proc.rank]
        registry["counts"][proc.rank] += 1
        yield from proc.co_sync()
        if idx == len(registry["shared"]):
            registry["shared"].append(
                _SharedTC(proc.engine, idx, task_size, max_tasks, cfg)
            )
        shared: _SharedTC = registry["shared"][idx]
        if shared.task_size != task_size or shared.max_tasks != max_tasks:
            raise TaskCollectionError(
                f"collective tc_create mismatch on rank {proc.rank}"
            )
        yield from Armci.attach(proc.engine).co_barrier(proc)
        return cls(proc, shared)

    destroy = blocking_method("co_destroy")

    def co_destroy(self):
        """Collectively destroy the collection (``tc_destroy``)."""
        yield from Armci.attach(self.proc.engine).co_barrier(self.proc)
        self._shared.destroyed = True

    reset = blocking_method("co_reset")

    def co_reset(self):
        """Collectively drop all queued tasks so the collection can be reused
        (``tc_reset``)."""
        self._check_alive()
        armci = Armci.attach(self.proc.engine)
        yield from armci.co_barrier(self.proc)
        self._shared.queues[self.proc.rank].drain()
        yield from armci.co_barrier(self.proc)

    # ------------------------------------------------------------------ #
    # Registration (collective)
    # ------------------------------------------------------------------ #
    def register(self, fn: Callable[["TaskCollection", Task], None]) -> int:
        """Collectively register a task callback; returns its portable handle.

        Every rank must register the same callbacks in the same order.
        """
        self._check_alive()
        if not callable(fn):
            raise TypeError(f"callback must be callable, got {fn!r}")
        table = self._shared.callbacks[self.rank]
        table.append(fn)
        return len(table) - 1

    def register_clo(self, obj: Any) -> int:
        """Collectively register a common local object (§2.3).

        Each rank passes its own local instance; the returned handle
        resolves to the local instance on whichever rank a task runs.
        """
        self._check_alive()
        store = self._shared.clos[self.rank]
        store.append(obj)
        return len(store) - 1

    def clo(self, handle: int) -> Any:
        """Look up this rank's instance of a common local object."""
        store = self._shared.clos[self.rank]
        if not 0 <= handle < len(store):
            raise TaskCollectionError(
                f"no common local object with handle {handle} on rank {self.rank}"
            )
        return store[handle]

    # ------------------------------------------------------------------ #
    # Task management
    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        return self.proc.rank

    @property
    def nprocs(self) -> int:
        return self.proc.nprocs

    @property
    def config(self) -> SciotoConfig:
        return self._shared.config

    add = blocking_method("co_add")

    def co_add(
        self,
        task: Task,
        rank: int | None = None,
        affinity: int | None = None,
    ):
        """Add a task to the collection (``tc_add``).

        The descriptor is copied (copy-in/out semantics) so the caller may
        immediately reuse or mutate its task buffer.

        Args:
            task: The task descriptor to add.
            rank: Destination process; defaults to the calling rank.
            affinity: Affinity of the task for the destination process;
                defaults to the value already in the descriptor.
        """
        shared = self._shared
        if shared.destroyed:
            raise TaskCollectionError("operation on a destroyed task collection")
        proc = self.proc
        myrank = proc.rank
        if not 0 <= task.callback < len(shared.callbacks[myrank]):
            raise TaskCollectionError(
                f"task callback handle {task.callback} is not registered"
            )
        dest = myrank if rank is None else rank
        if not 0 <= dest < proc.engine.nprocs:
            raise TaskCollectionError(f"invalid destination rank {dest}")
        t = task.clone()
        t.created_by = myrank
        if affinity is not None:
            t.affinity = affinity
        if proc.engine.observed:
            trace(proc, "task-add", t.uid)
        if dest == myrank:
            yield from shared.queues[dest].co_push_local(proc, t)
        else:
            yield from shared.queues[dest].co_add_remote(proc, t)
            td = shared.active[myrank]
            if td is not None:
                td.note_remote_add(proc, dest)

    def task(self, callback: int, body: Any = None, affinity: int = 0,
             body_size: int | None = None) -> Task:
        """Convenience constructor for a task descriptor."""
        return Task(callback=callback, body=body, affinity=affinity, body_size=body_size)

    process = blocking_method("co_process")

    def co_process(self):
        """Collectively process the collection to global termination
        (``tc_process``).  See ``repro.core.scheduler`` for the loop."""
        self._check_alive()
        from repro.core.scheduler import co_run_process

        return (yield from co_run_process(self))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def local_size(self) -> int:
        """Tasks currently queued on the calling rank (owner view)."""
        return self._shared.queues[self.rank].size()

    def total_size(self) -> int:
        """Tasks queued across all ranks (test/debug: not cost-charged)."""
        return sum(q.size() for q in self._shared.queues)

    def counters(self) -> Counters:
        """The collection's cumulative statistics counters."""
        return self._shared.counters

    def _check_alive(self) -> None:
        if self._shared.destroyed:
            raise TaskCollectionError("operation on a destroyed task collection")
