"""``repro.check`` — schedule-exploration model checking for the Scioto protocols.

The deterministic simulator executes exactly one interleaving per seed;
this package turns it into a correctness tool by driving the engine
through many *adversarial* interleavings and checking protocol
invariants on every one:

* :mod:`repro.check.strategies` — pluggable schedules: random walk, PCT
  (probabilistic concurrency testing), bounded delay injection, and
  deterministic trace replay.
* :mod:`repro.check.invariants` — exactly-once execution, never-early
  termination, split-queue descriptor conservation, mutex balance,
  task-graph dependency order.
* :mod:`repro.check.scenarios` — small checkable workloads targeting the
  split queue, the full ``tc_process`` stack, wait-free steals, and the
  TaskGraph extension.
* :mod:`repro.check.mutations` — intentional bugs that validate the
  checker catches what it claims to.
* :mod:`repro.check.runner` / :mod:`repro.check.traces` — the explore /
  persist / replay / minimize loop.

Command line::

    python -m repro.check --target queue --schedules 500
    python -m repro.check --target termination --strategy pct
    python -m repro.check --replay scioto-check/queue-random-s17.min.json
"""

from repro.check.invariants import (
    CheckContext,
    ExactlyOnce,
    GraphDependencyOrder,
    InvariantChecker,
    MutexBalance,
    NoEarlyTermination,
    QueueConsistency,
    Violation,
)
from repro.check.runner import ExploreResult, FailureReport, RunOutcome, explore, replay, run_once
from repro.check.scenarios import SCENARIOS, Scenario, make_scenario
from repro.check.strategies import (
    STRATEGIES,
    DelayInjector,
    DeterministicStrategy,
    ExplorationStrategy,
    PctStrategy,
    RandomWalk,
    ReplayStrategy,
    make_strategy,
)
from repro.check.traces import DecisionTrace, minimize_decisions

__all__ = [
    "CheckContext",
    "DecisionTrace",
    "DelayInjector",
    "DeterministicStrategy",
    "ExactlyOnce",
    "ExplorationStrategy",
    "ExploreResult",
    "FailureReport",
    "GraphDependencyOrder",
    "InvariantChecker",
    "MutexBalance",
    "NoEarlyTermination",
    "PctStrategy",
    "QueueConsistency",
    "RandomWalk",
    "ReplayStrategy",
    "RunOutcome",
    "SCENARIOS",
    "STRATEGIES",
    "Scenario",
    "Violation",
    "explore",
    "make_scenario",
    "make_strategy",
    "minimize_decisions",
    "replay",
    "run_once",
]
