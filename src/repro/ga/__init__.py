"""Global Arrays (GA) toolkit substrate: distributed dense arrays over ARMCI.

Implements the subset of GA the paper's applications use: collective
array creation with block distribution, one-sided ``get``/``put``/
``acc`` on arbitrary patches, ownership queries (``locate``,
``distribution``), ``read_inc`` shared counters (the original SCF/TCE
dynamic load balancer), ``sync``, and ``dgop`` reductions.
"""

from repro.ga.array import GlobalArray, GaRuntime
from repro.ga.counter import GlobalCounter
from repro.ga.distribution import BlockDistribution
from repro.ga.ops import ga_add, ga_copy, ga_dgop, ga_dot, ga_scale, ga_symmetrize
from repro.ga.dgemm import ga_dgemm

__all__ = [
    "GlobalArray",
    "GaRuntime",
    "GlobalCounter",
    "BlockDistribution",
    "ga_add",
    "ga_copy",
    "ga_dgop",
    "ga_dot",
    "ga_scale",
    "ga_symmetrize",
    "ga_dgemm",
]
