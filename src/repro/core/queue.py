"""The split task queue (§5): lock-free local portion, locked shared portion.

Each process owns one queue; the aggregation of all queues is the task
collection.  The queue holds task descriptors ordered by affinity —
highest affinity at the *head* (executed locally first), lowest at the
*tail* (stolen first).  The queue is split into a private portion
(head side), accessed by the owner without locking, and a shared portion
(tail side), protected by an ARMCI mutex and accessible to thieves
through one-sided operations.  The owner moves tasks across the split
with cheap pointer adjustments: *release* feeds surplus private work to
the shared portion, *reacquire* reclaims shared work when the private
portion drains.

The paper's implementation stores descriptors in a contiguous circular
array so a chunk of tasks moves in a single one-sided transfer; here the
storage is a Python list and contiguity shows up purely in the cost
model (one lock + one metadata get + one bulk get per steal).

With ``split_queues=False`` the queue degenerates to the paper's
original fully-locked design: the owner takes the mutex for every local
operation and stalls behind in-progress steals (Figure 7's "No Split"
line).
"""

from __future__ import annotations

import bisect
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.analyze import hooks
from repro.armci.runtime import Armci
from repro.core.config import SciotoConfig
from repro.core.task import Task
from repro.obs.record import edge_here, edge_mark, observe, span
from repro.obs.tracing import trace
from repro.sim.engine import Engine, Proc, blocking_method
from repro.sim.counters import Counters
from repro.util.errors import TaskCollectionError

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["SplitQueue", "QUEUE_META_BYTES"]

#: Bytes of queue metadata (head/split/tail indices) read/written remotely.
QUEUE_META_BYTES = 24


class SplitQueue:
    """One process's patch of the distributed task collection."""

    def __init__(
        self,
        engine: Engine,
        owner: int,
        capacity: int,
        default_body_size: int,
        config: SciotoConfig,
        counters: Counters,
        name: str = "tq",
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.engine = engine
        self.armci = Armci.attach(engine)
        self.owner = owner
        self.capacity = capacity
        self.default_body_size = default_body_size
        self.config = config
        self.counters = counters
        # Memoized push/pop costs per wire size: the cost model is a pure
        # function of the (immutable) machine spec, and task wire sizes
        # repeat, so the hot paths reuse the exact floats it computed.
        self._push_costs: dict[int, float] = {}
        self._copy_costs: dict[int, float] = {}
        # Ordered descending by affinity; index 0 is the head.
        # In split mode _private is the owner's lock-free portion and
        # _shared the steal-able portion; in locked mode everything lives
        # in _shared and every operation takes the mutex.
        self._private: list[Task] = []
        self._shared: list[Task] = []
        self.mutex = self.armci.create_mutex(owner, f"{name}[{owner}]")
        # Race-detector region for the steal-able (shared) portion and its
        # metadata.  The private portion is owner-only by construction, so
        # only shared-portion touches are instrumented.
        self._race_region = ("queue", name, owner)
        # Causal-edge source key: the most recent point at which tasks
        # became stealable here (release / remote add / locked insert).
        # A successful steal emits a steal edge from that point.
        self._share_key = ("qshare", name, owner)

    # ------------------------------------------------------------------ #
    # Introspection (no cost; owner-view or test use)
    # ------------------------------------------------------------------ #
    def size(self) -> int:
        """Total tasks currently queued (private + shared)."""
        return len(self._private) + len(self._shared)

    def private_size(self) -> int:
        return len(self._private)

    def shared_size(self) -> int:
        return len(self._shared)

    def empty_fast(self, proc: Proc) -> bool:
        """Owner's cheap emptiness probe: a local flag read, no global sync.

        May be slightly stale with respect to in-flight remote inserts,
        so callers must re-check through :meth:`pop_local` (which
        synchronizes) before treating the queue as drained.  Kept as a
        public utility for applications that poll their own queue.
        """
        proc.advance(self.engine.machine.local_get_overhead)
        return self.size() == 0

    # ------------------------------------------------------------------ #
    # Owner-side operations
    # ------------------------------------------------------------------ #
    def _wire(self, task: Task) -> int:
        return task.wire_size(self.default_body_size)

    def _check_capacity(self, extra: int) -> None:
        if self.size() + extra > self.capacity:
            raise TaskCollectionError(
                f"task queue on rank {self.owner} overflow: "
                f"{self.size()} + {extra} > max_tasks={self.capacity}"
            )

    @staticmethod
    def _insert_by_affinity(region: list[Task], task: Task) -> None:
        """Insert keeping descending affinity; equal affinities go to the
        front of their class (LIFO — newest first, for locality)."""
        if not region or task.affinity >= region[0].affinity:
            region.insert(0, task)
            return
        pos = bisect.bisect_left([-t.affinity for t in region], -task.affinity)
        region.insert(pos, task)

    push_local = blocking_method("co_push_local")

    def co_push_local(self, proc: Proc, task: Task):
        """Owner enqueues a task (lock-free in split mode)."""
        if proc.rank != self.owner:
            raise TaskCollectionError("push_local called by non-owner")
        engine = self.engine
        m = engine.machine
        self.counters.add(proc.rank, "local_push")
        if self.config.split_queues:
            wire = task.wire_size(self.default_body_size)
            cost = self._push_costs.get(wire)
            if cost is None:
                cost = m.local_insert_overhead + m.local_copy_time(wire)
                self._push_costs[wire] = cost
            proc._clock += cost  # advance(): model constant, >= 0
            yield from proc.co_sync()
            private = self._private
            if len(private) + len(self._shared) >= self.capacity:
                self._check_capacity(1)
            if not private or task.affinity >= private[0].affinity:
                private.insert(0, task)
            else:
                self._insert_by_affinity(private, task)
            if engine.observed:
                trace(proc, "q-push", (self.owner, task.uid))
                edge_mark(proc, ("spawn", task.uid), detail=task.uid)
            if not self._shared and len(private) >= 2:
                yield from self._co_maybe_release(proc)
        else:
            yield from self.mutex.co_acquire(proc)
            proc.advance(m.local_insert_overhead + m.local_copy_time(self._wire(task)))
            yield from proc.co_sync()
            self._check_capacity(1)
            hooks.shared_write(proc, self._race_region)
            self._insert_by_affinity(self._shared, task)
            trace(proc, "q-push", (self.owner, task.uid))
            edge_mark(proc, ("spawn", task.uid), detail=task.uid)
            edge_mark(proc, self._share_key)
            yield from self.mutex.co_release(proc)

    pop_local = blocking_method("co_pop_local")

    def co_pop_local(self, proc: Proc):
        """Owner dequeues the highest-affinity task, or None if empty."""
        if proc.rank != self.owner:
            raise TaskCollectionError("pop_local called by non-owner")
        engine = self.engine
        m = engine.machine
        if self.config.split_queues:
            proc._clock += m.local_get_overhead  # advance(): constant, >= 0
            yield from proc.co_sync()
            if not self._private and self._shared:
                yield from self._co_reacquire(proc)
            private = self._private
            if not private:
                return None
            task = private.pop(0)
            if engine.observed:
                trace(proc, "q-pop", (self.owner, task.uid))
            wire = task.wire_size(self.default_body_size)
            cost = self._copy_costs.get(wire)
            if cost is None:
                cost = m.local_copy_time(wire)
                self._copy_costs[wire] = cost
            proc._clock += cost  # advance(): model constant, >= 0
            self.counters.add(proc.rank, "local_pop")
            if not self._shared and len(private) >= 2:
                yield from self._co_maybe_release(proc)
            return task
        yield from self.mutex.co_acquire(proc)
        proc.advance(m.local_get_overhead)
        yield from proc.co_sync()
        hooks.shared_update(proc, self._race_region)
        task = self._shared.pop(0) if self._shared else None
        if task is not None:
            trace(proc, "q-pop", (self.owner, task.uid))
            proc.advance(m.local_copy_time(self._wire(task)))
            self.counters.add(proc.rank, "local_pop")
        yield from self.mutex.co_release(proc)
        return task

    def _co_maybe_release(self, proc: Proc):
        """Feed surplus private work to the shared portion (split move).

        Triggered when the shared portion has been drained (by thieves or
        by reacquisition): ``release_fraction`` of the private queue —
        its lowest-affinity tail — becomes stealable.  Checking only on
        emptiness keeps the owner's fast path lock-free in steady state.
        """
        if self._shared or len(self._private) < 2:
            return
        k = min(
            len(self._private) - 1,
            max(1, int(len(self._private) * self.config.release_fraction)),
        )

        def _move() -> None:
            # lowest-affinity private tasks (the tail) become shared; keep
            # the shared region sorted (remote adds may interleave)
            hooks.shared_update(proc, self._race_region)
            self._shared = self._private[-k:] + self._shared
            del self._private[-k:]
            self._shared.sort(key=lambda t: -t.affinity)

        observe(proc, "queue_occupancy", self.size())
        with span(proc, "release", "queue", detail=k):
            yield from self._co_owner_split_update(proc, _move)
        hooks.protocol(proc, "queue-release", n=k)
        edge_mark(proc, self._share_key, detail=k)
        self.counters.add(proc.rank, "release_ops")
        self.counters.add(proc.rank, "tasks_released", k)

    def _co_reacquire(self, proc: Proc):
        """Reclaim shared work for local execution (split move)."""
        if not self._shared:
            return
        k = max(1, int(len(self._shared) * self.config.reacquire_fraction))

        def _move() -> None:
            # highest-affinity shared tasks (the front) come back to private
            hooks.shared_update(proc, self._race_region)
            self._private.extend(self._shared[:k])
            del self._shared[:k]

        observe(proc, "queue_occupancy", self.size())
        with span(proc, "reacquire", "queue", detail=k):
            yield from self._co_owner_split_update(proc, _move)
        self.counters.add(proc.rank, "reacquire_ops")
        self.counters.add(proc.rank, "tasks_reacquired", k)

    def _co_owner_split_update(self, proc: Proc, move_fn):
        """Owner-side split-pointer adjustment.

        Locked mode takes the queue mutex briefly; wait-free mode uses a
        local CAS on the metadata, serializing with thieves' reservation
        atomics at this rank instead of blocking behind them.
        """
        if self.config.wait_free_steals:
            yield from self.armci.co_rmw(proc, self.owner, lambda: (move_fn(), None)[1])
            return
        yield from self.mutex.co_acquire(proc)
        proc.advance(self.engine.machine.local_lock_overhead)
        yield from proc.co_sync()
        move_fn()
        yield from self.mutex.co_release(proc)

    # ------------------------------------------------------------------ #
    # Remote operations (thief / remote inserter side)
    # ------------------------------------------------------------------ #
    steal_from = blocking_method("co_steal_from")

    def co_steal_from(
        self,
        proc: Proc,
        want: int,
        probe_first: bool = False,
        on_transfer: Callable[[], None] | None = None,
    ):
        """Steal up to ``want`` lowest-affinity tasks from this queue.

        Full one-sided protocol: lock, read metadata, bulk-get the chunk
        from the tail of the shared portion, update indices, unlock.
        Returns the stolen tasks ([] if none were available).

        With ``probe_first`` the thief reads the queue indices with a
        single unlocked get and backs off if the shared portion is empty
        — reading the split/tail words is safe without the mutex, and it
        makes idle-phase probing ~4x cheaper than a locked steal.  The
        scheduler enables this once steals start failing.

        ``on_transfer`` (when given) runs at the instant a non-empty
        chunk leaves the shared portion, inside the locked transaction —
        the §5.3 dirty mark rides here so the owner can never observe
        the emptied queue without it (``TerminationDetector.steal_mark``).
        """
        if proc.rank == self.owner:
            raise TaskCollectionError("a process cannot steal from itself")
        m = self.engine.machine
        self.counters.add(proc.rank, "steal_attempt")
        if self.config.wait_free_steals:
            return (yield from self._co_steal_waitfree(proc, want, on_transfer))
        if probe_first:
            n_shared = yield from self.armci.co_get(
                proc, self.owner, QUEUE_META_BYTES, lambda: len(self._shared)
            )
            if n_shared == 0:
                self.counters.add(proc.rank, "steal_probe_empty")
                return []
        yield from self.mutex.co_acquire(proc)

        # The queue is contiguous, so metadata and the tail chunk arrive in
        # a single one-sided get (the paper's "several tasks ... using a
        # single one-sided communication operation", §5).
        def _take() -> list[Task]:
            hooks.shared_update(proc, self._race_region)
            k = min(want, len(self._shared))
            taken = self._shared[len(self._shared) - k :]
            del self._shared[len(self._shared) - k :]
            if taken:
                trace(proc, "q-steal", (self.owner, tuple(t.uid for t in taken)))
                hooks.protocol(
                    proc, "steal-transfer", victim=self.owner, n=len(taken)
                )
                if on_transfer is not None:
                    on_transfer()
            return taken

        probe_k = min(want, len(self._shared))
        nbytes = QUEUE_META_BYTES + sum(
            self._wire(t) for t in self._shared[len(self._shared) - probe_k :]
        )
        tasks = yield from self.armci.co_get(proc, self.owner, nbytes, _take)
        if not tasks:
            yield from self.mutex.co_release(proc)
            proc.advance(m.remote_op_overhead)
            return []
        yield from self.armci.co_put(proc, self.owner, QUEUE_META_BYTES, None)  # index update
        yield from self.mutex.co_release(proc)
        proc.advance(m.remote_op_overhead)
        self.counters.add(proc.rank, "steal_success")
        self.counters.add(proc.rank, "tasks_stolen", len(tasks))
        trace(proc, "steal", f"{len(tasks)} tasks from rank {self.owner}")
        edge_here(proc, self._share_key, "steal", detail=len(tasks))
        return tasks

    def _co_steal_waitfree(
        self,
        proc: Proc,
        want: int,
        on_transfer: Callable[[], None] | None = None,
    ):
        """Wait-free steal (§8 future work): one remote atomic reserves the
        chunk by moving the tail index; the descriptors then move with a
        single get.  No mutex is taken, so an in-progress steal never
        blocks the owner or other thieves — reservations serialize only
        for the duration of the metadata atomic at the target."""
        m = self.engine.machine

        def _reserve() -> list[Task]:
            hooks.shared_update(proc, self._race_region)
            k = min(want, len(self._shared))
            taken = self._shared[len(self._shared) - k :]
            del self._shared[len(self._shared) - k :]
            if taken:
                trace(proc, "q-steal", (self.owner, tuple(t.uid for t in taken)))
                hooks.protocol(
                    proc, "steal-transfer", victim=self.owner, n=len(taken)
                )
                if on_transfer is not None:
                    on_transfer()
            return taken

        tasks = yield from self.armci.co_rmw(proc, self.owner, _reserve)
        if not tasks:
            return []
        nbytes = sum(self._wire(t) for t in tasks)
        proc.advance(m.get_time(nbytes))  # fetch the reserved slots
        yield from proc.co_sync()
        proc.advance(m.remote_op_overhead)
        self.counters.add(proc.rank, "steal_success")
        self.counters.add(proc.rank, "tasks_stolen", len(tasks))
        trace(proc, "steal-wf", f"{len(tasks)} tasks from rank {self.owner}")
        edge_here(proc, self._share_key, "steal", detail=len(tasks))
        return tasks

    absorb_stolen = blocking_method("co_absorb_stolen")

    def co_absorb_stolen(self, proc: Proc, tasks: list[Task]):
        """Thief deposits a stolen chunk into its own queue.

        The chunk arrived in one contiguous buffer; absorbing it is a
        single local copy plus an insert, then an affinity-order merge.
        """
        if proc.rank != self.owner:
            raise TaskCollectionError("absorb_stolen called by non-owner")
        if not tasks:
            return
        m = self.engine.machine
        nbytes = sum(self._wire(t) for t in tasks)
        if not self.config.split_queues:
            # Fully-locked design: the absorbing owner inserts into the
            # shared (and only) portion, which concurrent thieves may be
            # stealing from — so the insert takes the queue mutex like
            # every other operation in this mode.
            yield from self.mutex.co_acquire(proc)
        proc.advance(m.local_insert_overhead + m.local_copy_time(nbytes))
        yield from proc.co_sync()
        self._check_capacity(len(tasks))
        if self.config.split_queues:
            region = self._private
        else:
            hooks.shared_write(proc, self._race_region)
            region = self._shared
        region.extend(tasks)
        region.sort(key=lambda t: -t.affinity)  # stable merge; mostly sorted
        trace(proc, "q-absorb", (self.owner, tuple(t.uid for t in tasks)))
        if self.config.split_queues:
            yield from self._co_maybe_release(proc)
        else:
            edge_mark(proc, self._share_key, detail=len(tasks))
            yield from self.mutex.co_release(proc)

    add_remote = blocking_method("co_add_remote")

    def co_add_remote(self, proc: Proc, task: Task):
        """Insert a task into another process's queue (remote ``tc_add``).

        Protocol: lock, read tail index, put the descriptor, update the
        index, unlock.  The task lands in the shared portion — remote
        processes never touch the owner's private region.
        """
        if proc.rank == self.owner:
            raise TaskCollectionError("add_remote called by the owner; use push_local")
        m = self.engine.machine
        self.counters.add(proc.rank, "remote_add")

        def _insert() -> None:
            self._check_capacity(1)
            hooks.shared_write(proc, self._race_region)
            self._insert_by_affinity(self._shared, task)
            trace(proc, "q-add-remote", (self.owner, task.uid))
            edge_mark(proc, ("spawn", task.uid), detail=task.uid)
            edge_mark(proc, self._share_key)

        if self.config.wait_free_steals:
            # reserve a slot with one atomic, then put the descriptor
            yield from self.armci.co_rmw(proc, self.owner, _insert)
            yield from self.armci.co_put(proc, self.owner, self._wire(task), None)
        else:
            yield from self.mutex.co_acquire(proc)
            yield from self.armci.co_get(proc, self.owner, QUEUE_META_BYTES, None)  # read indices
            yield from self.armci.co_put(proc, self.owner, self._wire(task), _insert)
            yield from self.mutex.co_release(proc)
        proc.advance(m.remote_op_overhead)

    def drain(self) -> list[Task]:
        """Remove and return all queued tasks (used by ``tc_reset``).

        ``tc_reset`` is collective and runs between barriers, so no
        thief can be in the queue while it drains — safe without the
        mutex.
        """
        out = self._private + self._shared
        self._private = []
        self._shared = []  # repro: lint-disable=RPR001
        return out
