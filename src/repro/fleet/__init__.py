"""``repro.fleet`` — work-stealing multi-core meta-scheduler.

Farms simulation jobs (schedule-exploration shards, bench experiments,
mutation-matrix cells) out over ``multiprocessing`` workers using the
paper's own split-queue work-stealing algorithm at the host level:
per-worker job deques with a release/reacquire split, steal-half
chunking, neighbor-first victim selection, and wave-based quiescence
detection mirroring :mod:`repro.core.termination`.

Entry points: ``python -m repro.fleet``, ``python -m repro.check
explore --jobs N``, ``python -m repro.bench --jobs N``.  See
``docs/fleet.md``.
"""

from repro.fleet.jobs import (
    Job,
    JobResult,
    bench_jobs,
    execute_job,
    explore_jobs,
    mutation_jobs,
    trace_fingerprint,
)
from repro.fleet.results import (
    ExploreSummary,
    MergedFailure,
    failing_set_digest,
    merge_explore,
    persist_failures,
)
from repro.fleet.scheduler import FleetReport, FleetScheduler, QuiescenceDetector
from repro.fleet.seeds import derive_seed, derive_seeds
from repro.fleet.wsqueue import WorkerDeque, neighbor_order

__all__ = [
    "Job",
    "JobResult",
    "execute_job",
    "explore_jobs",
    "bench_jobs",
    "mutation_jobs",
    "trace_fingerprint",
    "ExploreSummary",
    "MergedFailure",
    "merge_explore",
    "failing_set_digest",
    "persist_failures",
    "FleetScheduler",
    "FleetReport",
    "QuiescenceDetector",
    "derive_seed",
    "derive_seeds",
    "WorkerDeque",
    "neighbor_order",
]
