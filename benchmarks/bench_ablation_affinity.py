"""Ablation A4: locality-aware (owner) vs round-robin task placement."""

from repro.bench.ablations import run_ablation_affinity
from repro.bench.harness import scale
from repro.bench.report import render


def test_ablation_affinity_placement(benchmark):
    result = benchmark.pedantic(
        run_ablation_affinity, args=(scale(),), rounds=1, iterations=1
    )
    print("\n" + render(result, x_label="mode", fmt="{:.3g}"))
    runtime = result.get("runtime")
    remote = result.get("remote-accumulates")
    # owner placement (x=0) must do far fewer remote accumulates and be
    # at least as fast as the locality-oblivious placement (x=1)
    assert remote.y_at(0) < 0.6 * remote.y_at(1)
    assert runtime.y_at(0) <= runtime.y_at(1)
