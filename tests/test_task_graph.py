"""Tests for the inter-task dependency extension (paper §8 future work)."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Task, TaskCollection
from repro.core.graph import TaskGraph
from repro.sim.engine import Engine
from repro.util.errors import TaskCollectionError


def _run(nprocs, main, *args, seed=0, max_events=3_000_000):
    eng = Engine(nprocs, seed=seed, max_events=max_events)
    eng.spawn_all(main, *args)
    return eng.run()


def _build_diamond(tg, log, lock):
    def step(tc, task):
        tc.proc.compute(1e-6)
        with lock:
            log.append(task.body)

    tg.add("a", step, body="a")
    tg.add("b", step, body="b", deps=["a"])
    tg.add("c", step, body="c", deps=["a"])
    tg.add("d", step, body="d", deps=["b", "c"])


class TestTaskGraph:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_diamond_respects_order(self, nprocs):
        log: list[str] = []
        lock = threading.Lock()

        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)
            _build_diamond(tg, log, lock)
            tg.process()

        _run(nprocs, main)
        assert sorted(log) == ["a", "b", "c", "d"]
        assert log[0] == "a"
        assert log[-1] == "d"

    def test_chain_executes_in_order(self):
        log: list[int] = []

        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)

            def step(tc_, task):
                log.append(task.body)

            for i in range(10):
                deps = [f"t{i-1}"] if i else []
                tg.add(f"t{i}", step, body=i, deps=deps)
            tg.process()

        _run(3, main)
        assert log == list(range(10))

    def test_independent_tasks_spread_over_ranks(self):
        ran_on: set[int] = set()

        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)

            def step(tc_, task):
                tc_.proc.compute(5e-6)
                ran_on.add(tc_.rank)

            for i in range(40):
                tg.add(f"t{i}", step)
            tg.process()

        _run(4, main)
        assert len(ran_on) >= 3, f"hash placement engaged only {ran_on}"

    def test_explicit_rank_placement(self):
        homes: list[tuple[str, int]] = []

        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)

            def step(tc_, task):
                homes.append((task.body, tc_.rank))

            # no stealing pressure: chains serialize, so tasks run at home
            tg.add("x", step, body="x", rank=1)
            tg.add("y", step, body="y", deps=["x"], rank=2)
            tg.process()

        _run(3, main)
        assert dict(homes) == {"x": 1, "y": 2}

    def test_cycle_detected(self):
        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)
            fn = lambda tc_, t: None
            tg.add("a", fn, deps=["b"])
            tg.add("b", fn, deps=["a"])
            tg.process()

        with pytest.raises(TaskCollectionError, match="cycle"):
            _run(2, main)

    def test_unknown_dependency_rejected(self):
        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)
            tg.add("a", lambda tc_, t: None, deps=["ghost"])
            tg.process()

        with pytest.raises(TaskCollectionError, match="unknown task"):
            _run(1, main)

    def test_duplicate_name_rejected(self):
        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)
            tg.add("a", lambda tc_, t: None)
            tg.add("a", lambda tc_, t: None)

        with pytest.raises(TaskCollectionError, match="duplicate"):
            _run(1, main)

    def test_add_after_process_rejected(self):
        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)
            tg.add("a", lambda tc_, t: None)
            tg.process()
            tg.add("late", lambda tc_, t: None)

        with pytest.raises(TaskCollectionError, match="after process"):
            _run(1, main)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        nprocs=st.integers(1, 6),
        n=st.integers(2, 24),
        edge_prob=st.floats(0.05, 0.5),
    )
    def test_random_dags_respect_all_edges(self, seed, nprocs, n, edge_prob):
        """Property: in any random DAG, every task runs exactly once and
        strictly after all of its dependencies."""
        import numpy as np

        rng = np.random.default_rng(seed)
        deps: dict[int, list[int]] = {
            i: [j for j in range(i) if rng.random() < edge_prob] for i in range(n)
        }
        order: list[int] = []
        lock = threading.Lock()

        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)

            def step(tc_, task):
                tc_.proc.compute(float(task.body % 3 + 1) * 1e-6)
                with lock:
                    order.append(task.body)

            for i in range(n):
                tg.add(f"t{i}", step, body=i, deps=[f"t{j}" for j in deps[i]])
            tg.process()

        _run(nprocs, main, seed=seed)
        assert sorted(order) == list(range(n))
        pos = {t: k for k, t in enumerate(order)}
        for i, ds in deps.items():
            for j in ds:
                assert pos[j] < pos[i], f"t{j} must precede t{i}"


class TestStealAfterVoteDirtyMark:
    """Regression: §5.3 marks delivered as a message after the steal lose
    a race against the victim's vote.

    Found by ``test_random_dags_respect_all_edges`` (seed=363, nprocs=3,
    n=13, edge_prob=0.4375): rank 1 votes white, steals ``t3`` from rank
    2, and rank 2 votes white before the thief's fenced dirty-mark put
    lands — so wave 1 completes all-white while ``t3`` is executing and
    its dependent ``t5`` is enqueued into a terminated collection and
    silently dropped.  The fix applies the mark inside the steal's
    locked transfer (``TerminationDetector.steal_mark``); the old
    message-based protocol is preserved as the ``late_dirty_mark``
    mutation, which must still reproduce the drop on this workload.
    """

    SEED, NPROCS, N, EDGE_PROB = 363, 3, 13, 0.4375

    def _run_dag(self):
        import numpy as np

        rng = np.random.default_rng(self.SEED)
        deps = {
            i: [j for j in range(i) if rng.random() < self.EDGE_PROB]
            for i in range(self.N)
        }
        order: list[int] = []
        lock = threading.Lock()

        def main(proc):
            tc = TaskCollection.create(proc)
            tg = TaskGraph.create(tc)

            def step(tc_, task):
                tc_.proc.compute(float(task.body % 3 + 1) * 1e-6)
                with lock:
                    order.append(task.body)

            for i in range(self.N):
                tg.add(f"t{i}", step, body=i, deps=[f"t{j}" for j in deps[i]])
            tg.process()

        _run(self.NPROCS, main, seed=self.SEED)
        return order

    def test_in_transfer_mark_runs_every_task(self):
        assert sorted(self._run_dag()) == list(range(self.N))

    def test_late_mark_mutation_reproduces_the_drop(self):
        from repro.check.mutations import apply_mutation

        with apply_mutation("late_dirty_mark"):
            order = self._run_dag()
        assert sorted(order) != list(range(self.N)), (
            "the message-based dirty mark was expected to lose the race "
            "and drop tasks on this workload; if it no longer does, the "
            "regression fixture needs a new seed"
        )
