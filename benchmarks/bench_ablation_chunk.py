"""Ablation A3: steal chunk size vs UTS throughput (§5.1)."""

from repro.bench.ablations import run_ablation_chunk
from repro.bench.harness import scale
from repro.bench.report import render


def test_ablation_chunk_size(benchmark):
    result = benchmark.pedantic(run_ablation_chunk, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, x_label="chunk", fmt="{:.3g}"))
    thpt = result.series[0]
    steals = result.get("steals")
    # chunked steals amortize the transfer: chunk 10 (the paper default)
    # beats chunk 1, and needs far fewer steal operations
    assert thpt.y_at(10) > thpt.y_at(1)
    assert steals.y_at(10) < 0.7 * steals.y_at(1)
