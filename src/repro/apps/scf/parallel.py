"""Parallel SCF drivers: Scioto task collections vs the original counter.

Both drivers run the identical iteration skeleton — fill F's local patch
with the core Hamiltonian, build the significant Fock blocks in
parallel, then (replicated, as the original GA code does) gather F,
diagonalize, and damp the density — and differ *only* in how Fock-block
tasks are scheduled:

* **Scioto** (§6.2): each rank seeds one high-affinity task per
  significant pair whose F block it owns; work stealing balances the
  irregular block costs.  Screened pairs are never enqueued — the
  screening metadata is replicated, so owners skip them for free.
* **Original**: the full ordered pair list (screened pairs included) is
  replicated on every rank and tasks are claimed by atomic
  ``read_inc`` on a shared counter — locality-oblivious, with every
  claim a remote atomic serializing at the counter host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.scf.problem import SCFProblem
from repro.armci.runtime import Armci
from repro.baselines.global_counter import GlobalCounterScheduler
from repro.core import AFFINITY_HIGH, SciotoConfig, Task, TaskCollection
from repro.ga import GlobalArray
from repro.sim.engine import Engine, SimResult
from repro.sim.machines import MachineSpec

__all__ = ["run_scf_scioto", "run_scf_original", "SCFRunResult"]

#: Local cost of examining one pair while seeding / enumerating.
_PAIR_SCAN_COST = 0.05e-6
#: Wire size of one Fock-task body (two block indices + references).
_SCF_TASK_BYTES = 48


@dataclass
class SCFRunResult:
    """Outcome of a parallel SCF run."""

    mode: str
    nprocs: int
    energies: list[float]
    elapsed: float  #: virtual time of the full SCF loop (max over ranks)
    fock_time: float  #: virtual time spent in Fock builds (max over ranks)
    iterations: int
    sim: SimResult
    extra: dict[str, float] = field(default_factory=dict)


def _block_box(problem: SCFProblem, i: int, j: int) -> tuple[tuple[int, int], tuple[int, int]]:
    si, sj = problem.block_slice(i), problem.block_slice(j)
    return (si.start, sj.start), (si.stop, sj.stop)


def _co_execute_pair(proc, problem: SCFProblem, d_ga: GlobalArray, f_ga: GlobalArray,
                     i: int, j: int):
    """Shared task body: screen, read D blocks, compute, store F block."""
    m = proc.machine
    proc.compute(problem.task_flops(i, j) * m.seconds_per_flop)
    if not problem.significant(i, j):
        return
    lo_ij, hi_ij = _block_box(problem, i, j)
    lo_ji, hi_ji = _block_box(problem, j, i)
    d_ij = yield from d_ga.co_get(proc, lo_ij, hi_ij)
    d_ji = yield from d_ga.co_get(proc, lo_ji, hi_ji)
    f_blk = problem.fock_block(i, j, d_ij, d_ji)
    yield from f_ga.co_put(proc, lo_ij, hi_ij, f_blk)


def _scf_main(proc, problem: SCFProblem, iterations: int, mode: str,
              config: SciotoConfig | None, convergence: float | None):
    armci = Armci.attach(proc.engine)
    m = proc.machine
    nbf = problem.nbf
    d_ga = yield from GlobalArray.co_create(proc, "D", (nbf, nbf))
    f_ga = yield from GlobalArray.co_create(proc, "F", (nbf, nbf))

    # Scheduler setup (collective, once)
    if mode == "scioto":
        tc = yield from TaskCollection.co_create(
            proc, task_size=_SCF_TASK_BYTES,
            max_tasks=problem.nblocks * problem.nblocks + 8,
            config=config or SciotoConfig(),
        )

        def fock_task(tc_, task):
            i, j = task.body
            yield from _co_execute_pair(tc_.proc, problem, d_ga, f_ga, i, j)

        h = tc.register(fock_task)
    else:
        sched = yield from GlobalCounterScheduler.co_create(
            proc, lambda p, pair: _co_execute_pair(p, problem, d_ga, f_ga, *pair)
        )
        task_list = problem.all_pairs()  # replicated, screened pairs included

    # Initial density: each rank writes its own patch (local).
    (plo, phi) = d_ga.distribution(proc.rank)
    d0 = problem.initial_density()
    d_ga.access(proc)[...] = d0[tuple(slice(l, h) for l, h in zip(plo, phi))]
    yield from d_ga.co_sync(proc)

    energies: list[float] = []
    fock_time = 0.0
    t_start = proc.now
    h_full = problem.core_hamiltonian()
    for _ in range(iterations):
        # F starts as the core Hamiltonian (covers screened blocks).
        f_ga.access(proc)[...] = h_full[tuple(slice(l, h) for l, h in zip(plo, phi))]
        proc.advance(m.local_copy_time(f_ga.access(proc).nbytes))
        yield from f_ga.co_sync(proc)
        t0 = proc.now
        if mode == "scioto":
            proc.advance(_PAIR_SCAN_COST * problem.nblocks * problem.nblocks)
            for i in range(problem.nblocks):
                for j in range(problem.nblocks):
                    if not problem.significant(i, j):
                        continue
                    lo, _ = _block_box(problem, i, j)
                    if f_ga.locate(lo) == proc.rank:
                        yield from tc.co_add(
                            Task(callback=h, body=(i, j)), affinity=AFFINITY_HIGH
                        )
            yield from tc.co_process()
        else:
            proc.advance(_PAIR_SCAN_COST * len(task_list))
            yield from sched.counter.co_reset(proc)
            yield from sched.co_run(task_list)
        yield from f_ga.co_sync(proc)
        fock_time += proc.now - t0
        # Replicated update: gather F, diagonalize, damp D, store own patch.
        f_full = yield from f_ga.co_read_full(proc)
        d_old = yield from d_ga.co_read_full(proc)
        # sync before anyone overwrites D: every rank must finish reading
        # the old density first (GA codes put a ga_sync here)
        yield from d_ga.co_sync(proc)
        energies.append(problem.energy(f_full, d_old))
        if (
            convergence is not None
            and len(energies) >= 2
            and abs(energies[-1] - energies[-2]) < convergence
        ):
            # every rank computed the identical energies, so the early-stop
            # decision is replicated — no extra collective needed
            break
        # The eigensolve is parallel in real GA codes (PeIGS); charge the
        # per-rank share so it does not become an artificial serial term.
        proc.compute(problem.diag_flops() * m.seconds_per_flop / proc.nprocs)
        d_new = problem.next_density(f_full, d_old)
        d_ga.access(proc)[...] = d_new[tuple(slice(l, h) for l, h in zip(plo, phi))]
        yield from d_ga.co_sync(proc)
    elapsed = yield from armci.co_allreduce(proc, proc.now - t_start, max)
    fock_time = yield from armci.co_allreduce(proc, fock_time, max)
    return (energies, elapsed, fock_time)


def _run(mode: str, nprocs: int, problem: SCFProblem, iterations: int,
         machine: MachineSpec | None, seed: int,
         config: SciotoConfig | None, max_events: int | None,
         convergence: float | None, engine_hook=None) -> SCFRunResult:
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=max_events)
    if engine_hook is not None:
        engine_hook(eng)
    eng.spawn_all(_scf_main, problem, iterations, mode, config, convergence)
    sim = eng.run()
    energies, elapsed, fock_time = sim.returns[0]
    return SCFRunResult(
        mode=mode,
        nprocs=nprocs,
        energies=energies,
        elapsed=elapsed,
        fock_time=fock_time,
        iterations=len(energies),
        sim=sim,
    )


def run_scf_scioto(
    nprocs: int,
    problem: SCFProblem,
    iterations: int = 4,
    machine: MachineSpec | None = None,
    seed: int = 0,
    config: SciotoConfig | None = None,
    max_events: int | None = None,
    convergence: float | None = None,
    engine_hook=None,
) -> SCFRunResult:
    """SCF with Scioto task collections (the paper's port).

    ``convergence`` enables early stop on ``|dE|`` below the threshold.
    ``engine_hook`` is called with the Engine before spawning (observer
    attachment point, see ``repro.obs``).
    """
    return _run("scioto", nprocs, problem, iterations, machine, seed, config,
                max_events, convergence, engine_hook)


def run_scf_original(
    nprocs: int,
    problem: SCFProblem,
    iterations: int = 4,
    machine: MachineSpec | None = None,
    seed: int = 0,
    max_events: int | None = None,
    convergence: float | None = None,
    engine_hook=None,
) -> SCFRunResult:
    """SCF with the original replicated-list + global-counter scheduler."""
    return _run("original", nprocs, problem, iterations, machine, seed, None,
                max_events, convergence, engine_hook)
