"""Setup shim so that ``pip install -e .`` works without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables the
legacy editable-install path on environments that lack ``bdist_wheel``.
"""

from setuptools import setup

setup()
