"""Parallel TCE drivers: Scioto vs the original global-counter scheme.

The task body is shared: fetch ``A[i,k]`` and ``B[k,j]`` from GA,
multiply, and *accumulate* into ``C[i,j]`` (GA ``acc``).  The schedulers
differ exactly as in the paper:

* **Original**: the counter enumerates all ``nblocks^3`` triples; most
  claims hit a zero block and are discarded, so the shared counter is
  hammered far beyond the real work count, and accumulates land on
  random remote owners where they serialize.
* **Scioto**: each rank seeds tasks only for nonzero triples whose C
  block it owns (sparsity metadata is replicated), with high affinity —
  accumulates become local memory operations and no shared counter
  exists at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.tce.problem import TCEProblem
from repro.armci.runtime import Armci
from repro.baselines.global_counter import GlobalCounterScheduler
from repro.core import AFFINITY_HIGH, SciotoConfig, Task, TaskCollection
from repro.ga import GlobalArray
from repro.sim.engine import Engine, SimResult
from repro.sim.machines import MachineSpec

__all__ = ["run_tce_scioto", "run_tce_original", "TCERunResult"]

#: Local cost of examining one triple while seeding.
_TRIPLE_SCAN_COST = 0.04e-6
#: Wire size of one contraction-task body.
_TCE_TASK_BYTES = 48


@dataclass
class TCERunResult:
    """Outcome of a parallel contraction run."""

    mode: str
    nprocs: int
    elapsed: float  #: virtual time of the contraction (max over ranks)
    result: np.ndarray  #: the assembled C matrix (for verification)
    tasks_real: int
    sim: SimResult
    comm: dict[str, float] | None = None  #: aggregate ARMCI counters (acc_remote, rmw, ...)


def _block_box(problem: TCEProblem, i: int, j: int):
    b = problem.blocksize
    return (i * b, j * b), ((i + 1) * b, (j + 1) * b)


def _co_execute_triple(proc, problem: TCEProblem, a_ga, b_ga, c_ga,
                       i: int, j: int, k: int):
    """Shared task body: fetch blocks, GEMM, accumulate into C."""
    m = proc.machine
    lo_a, hi_a = _block_box(problem, i, k)
    lo_b, hi_b = _block_box(problem, k, j)
    lo_c, hi_c = _block_box(problem, i, j)
    a_blk = yield from a_ga.co_get(proc, lo_a, hi_a)
    b_blk = yield from b_ga.co_get(proc, lo_b, hi_b)
    proc.compute(problem.gemm_flops() * m.seconds_per_flop)
    yield from c_ga.co_acc(proc, lo_c, hi_c, a_blk @ b_blk)


def _tce_main(proc, problem: TCEProblem, mode: str, config: SciotoConfig | None,
              placement: str = "owner"):
    armci = Armci.attach(proc.engine)
    m = proc.machine
    n = problem.n
    a_ga = yield from GlobalArray.co_create(proc, "A", (n, n))
    b_ga = yield from GlobalArray.co_create(proc, "B", (n, n))
    c_ga = yield from GlobalArray.co_create(proc, "C", (n, n))
    # Initialize inputs: each rank fills its own patches locally.
    (plo, phi) = a_ga.distribution(proc.rank)
    sl = tuple(slice(l, h) for l, h in zip(plo, phi))
    a_ga.access(proc)[...] = problem.dense_a()[sl]
    b_ga.access(proc)[...] = problem.dense_b()[sl]
    yield from a_ga.co_sync(proc)

    if mode == "scioto":
        tc = yield from TaskCollection.co_create(
            proc, task_size=_TCE_TASK_BYTES,
            max_tasks=max(64, len(problem.nonzero_triples()) + 8),
            config=config or SciotoConfig(),
        )

        def triple_task(tc_, task):
            i, j, k = task.body
            yield from _co_execute_triple(tc_.proc, problem, a_ga, b_ga, c_ga, i, j, k)

        h = tc.register(triple_task)
    else:
        def counter_task(p, triple):
            i, j, k = triple
            p.compute(problem.triple_scan_flops() * p.machine.seconds_per_flop)
            if problem.nonzero_a(i, k) and problem.nonzero_b(k, j):
                yield from _co_execute_triple(p, problem, a_ga, b_ga, c_ga, i, j, k)

        sched = yield from GlobalCounterScheduler.co_create(proc, counter_task)
        task_list = problem.all_triples()

    yield from armci.co_barrier(proc)
    t0 = proc.now
    nreal = 0
    if mode == "scioto":
        nb = problem.nblocks
        proc.advance(_TRIPLE_SCAN_COST * nb * nb * nb)
        for idx, (i, j, k) in enumerate(problem.nonzero_triples()):
            if placement == "owner":
                # locality-aware: the task runs where its C block lives
                lo, _ = _block_box(problem, i, j)
                mine = c_ga.locate(lo) == proc.rank
                affinity = AFFINITY_HIGH
            else:  # round-robin: locality-oblivious placement (ablation A4)
                mine = idx % proc.nprocs == proc.rank
                affinity = 0
            if mine:
                yield from tc.co_add(Task(callback=h, body=(i, j, k)), affinity=affinity)
                nreal += 1
    else:
        yield from sched.co_run(task_list)
    if mode == "scioto":
        yield from tc.co_process()
    yield from c_ga.co_sync(proc)
    elapsed = yield from armci.co_allreduce(proc, proc.now - t0, max)
    return (elapsed, nreal)


def _run(mode, nprocs, problem, machine, seed, config, max_events,
         placement="owner", engine_hook=None) -> TCERunResult:
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=max_events)
    if engine_hook is not None:
        engine_hook(eng)
    eng.spawn_all(_tce_main, problem, mode, config, placement)
    sim = eng.run()
    elapsed = sim.returns[0][0]
    # assemble C for verification from the engine's GA state
    from repro.ga.array import GaRuntime

    ga_rt: GaRuntime = eng.state["ga"]
    c_ga = next(a for a in ga_rt.arrays if a.name == "C")
    return TCERunResult(
        mode=mode,
        nprocs=nprocs,
        elapsed=elapsed,
        result=c_ga.unsafe_snapshot(),
        tasks_real=len(problem.nonzero_triples()),
        sim=sim,
        comm=Armci.attach(eng).counters.snapshot(),
    )


def run_tce_scioto(
    nprocs: int,
    problem: TCEProblem,
    machine: MachineSpec | None = None,
    seed: int = 0,
    config: SciotoConfig | None = None,
    max_events: int | None = None,
    placement: str = "owner",
    engine_hook=None,
) -> TCERunResult:
    """Block-sparse contraction with Scioto task collections.

    ``placement="owner"`` seeds each task at its C block's owner (the
    paper's locality-aware scheme); ``"roundrobin"`` ignores data
    location (ablation A4).  ``engine_hook`` is called with the Engine
    before spawning (observer attachment point, see ``repro.obs``).
    """
    if placement not in ("owner", "roundrobin"):
        raise ValueError(f"unknown placement {placement!r}")
    return _run("scioto", nprocs, problem, machine, seed, config, max_events,
                placement=placement, engine_hook=engine_hook)


def run_tce_original(
    nprocs: int,
    problem: TCEProblem,
    machine: MachineSpec | None = None,
    seed: int = 0,
    max_events: int | None = None,
) -> TCERunResult:
    """Block-sparse contraction with the original counter scheme."""
    return _run("original", nprocs, problem, machine, seed, None, max_events)
